//! The ADEPT2 process engine: deployment, execution, ad-hoc change,
//! schema evolution and batch migration.

use crate::monitor::{EngineEvent, Monitor};
use crate::worklist::WorkItem;
use adept_core::{
    adapt_instance_state, apply_op, check_fast, compliance::check_fast_op, migrate_instance,
    ChangeError, ChangeOp, Delta, InstanceOutcome, MigrationOptions, MigrationReport, Verdict,
};
use adept_model::{Blocks, DataId, InstanceId, NodeId, ProcessSchema, Value};
use adept_state::{Decision, Driver, Execution, RuntimeError};
use adept_storage::{
    InstanceStore, MemoryBreakdown, Representation, SchemaRepository, Snapshot, TxnLog, TxnTarget,
};
use std::fmt;
use std::sync::Arc;

/// Engine-level error.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// A change operation failed.
    Change(ChangeError),
    /// A runtime operation failed.
    Runtime(RuntimeError),
    /// A named entity does not exist.
    NotFound(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Change(e) => write!(f, "change error: {e}"),
            EngineError::Runtime(e) => write!(f, "runtime error: {e}"),
            EngineError::NotFound(what) => write!(f, "not found: {what}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<ChangeError> for EngineError {
    fn from(e: ChangeError) -> Self {
        EngineError::Change(e)
    }
}

impl From<RuntimeError> for EngineError {
    fn from(e: RuntimeError) -> Self {
        EngineError::Runtime(e)
    }
}

/// The process-aware information system runtime. All state lives behind
/// interior locks, so `&ProcessEngine` is freely shared across threads
/// (parallel batch migration uses this).
#[derive(Debug)]
pub struct ProcessEngine {
    /// Deployed process types.
    pub repo: SchemaRepository,
    /// Running and finished instances.
    pub store: InstanceStore,
    /// The monitoring component.
    pub monitor: Monitor,
    /// The persisted log of committed change transactions.
    pub txn_log: TxnLog,
}

impl ProcessEngine {
    /// Creates an engine with the ADEPT2 hybrid storage strategy.
    pub fn new() -> Self {
        Self::with_strategy(Representation::Hybrid)
    }

    /// Creates an engine with an explicit storage strategy (the Fig. 2
    /// experiments compare strategies).
    pub fn with_strategy(strategy: Representation) -> Self {
        Self {
            repo: SchemaRepository::new(),
            store: InstanceStore::new(strategy),
            monitor: Monitor::new(),
            txn_log: TxnLog::new(),
        }
    }

    /// Assembles an engine around an existing repository and store (the
    /// persistence restore path: `adept_storage::persist::restore`).
    ///
    /// The transaction log starts **empty**, so sequence numbers restart
    /// at 1 — when restoring a [`Snapshot`] that carries committed
    /// transactions, use [`ProcessEngine::from_snapshot`] (or
    /// [`ProcessEngine::from_parts_with_log`]) to keep the change
    /// history and its numbering intact.
    pub fn from_parts(repo: SchemaRepository, store: InstanceStore) -> Self {
        Self::from_parts_with_log(repo, store, TxnLog::new())
    }

    /// Captures a persistence snapshot of the whole engine: repository,
    /// instance store *and* the committed change-transaction log.
    pub fn snapshot(&self) -> Snapshot {
        adept_storage::snapshot_with_txns(&self.repo, &self.store, &self.txn_log)
    }

    /// Restores an engine from a snapshot, including the transaction log
    /// (so the audit trail and its sequence numbering survive a
    /// save/restore round-trip).
    pub fn from_snapshot(s: &Snapshot) -> Result<Self, EngineError> {
        let (repo, store, txn_log) = adept_storage::restore_with_txns(s)?;
        Ok(Self::from_parts_with_log(repo, store, txn_log))
    }

    /// Assembles an engine around restored repository, store and
    /// transaction log (`adept_storage::persist::restore_with_txns`).
    pub fn from_parts_with_log(
        repo: SchemaRepository,
        store: InstanceStore,
        txn_log: TxnLog,
    ) -> Self {
        Self {
            repo,
            store,
            monitor: Monitor::new(),
            txn_log,
        }
    }

    // ------------------------------------------------------------------
    // Deployment and instance creation
    // ------------------------------------------------------------------

    /// Deploys a process template as a new type (version 1).
    pub fn deploy(&self, schema: ProcessSchema) -> Result<String, EngineError> {
        let name = self.repo.deploy(schema)?;
        self.monitor.record(EngineEvent::Deployed {
            type_name: name.clone(),
        });
        Ok(name)
    }

    /// Creates an instance on the newest version of a type.
    pub fn create_instance(&self, type_name: &str) -> Result<InstanceId, EngineError> {
        let version = self
            .repo
            .latest_version(type_name)
            .ok_or_else(|| EngineError::NotFound(format!("process type {type_name:?}")))?;
        let dep = self
            .repo
            .deployed(type_name, version)
            .ok_or_else(|| EngineError::NotFound(format!("version {version}")))?;
        let st = dep.execution().init()?;
        let id = self.store.create(type_name, version, st);
        self.monitor.record(EngineEvent::InstanceCreated {
            instance: id,
            version,
        });
        Ok(id)
    }

    // ------------------------------------------------------------------
    // Execution
    // ------------------------------------------------------------------

    /// Resolves the schema + block structure an instance currently runs on.
    fn context_of(&self, id: InstanceId) -> Result<(Arc<ProcessSchema>, Blocks), EngineError> {
        let inst = self
            .store
            .get(id)
            .ok_or_else(|| EngineError::NotFound(format!("{id}")))?;
        let schema = self
            .store
            .schema_of(&self.repo, id)
            .ok_or_else(|| EngineError::NotFound(format!("schema of {id}")))?;
        if inst.bias.is_empty() {
            if let Some(dep) = self.repo.deployed(&inst.type_name, inst.version) {
                return Ok((schema, (*dep.blocks).clone()));
            }
        }
        let blocks = Blocks::analyze(&schema)
            .map_err(|e| EngineError::Change(ChangeError::Precondition(e.to_string())))?;
        Ok((schema, blocks))
    }

    /// The owned schema + block structure a change session stages against
    /// (see [`ProcessEngine::begin_change`]).
    pub(crate) fn change_context(
        &self,
        id: InstanceId,
    ) -> Result<(ProcessSchema, Blocks), EngineError> {
        let (schema, blocks) = self.context_of(id)?;
        Ok(((*schema).clone(), blocks))
    }

    /// The global worklist: every activated activity of every instance.
    pub fn worklist(&self) -> Vec<WorkItem> {
        let mut items = Vec::new();
        for id in self.all_instances() {
            let Some(inst) = self.store.get(id) else {
                continue;
            };
            let Ok((schema, blocks)) = self.context_of(id) else {
                continue;
            };
            let ex = Execution::with_blocks(&schema, blocks);
            for node in ex.enabled(&inst.state) {
                let Ok(n) = schema.node(node) else { continue };
                items.push(WorkItem {
                    instance: id,
                    node,
                    activity: n.name.clone(),
                    role: n.attrs.role.clone(),
                    type_name: inst.type_name.clone(),
                    version: inst.version,
                });
            }
        }
        items
    }

    /// The worklist filtered by actor role.
    pub fn worklist_for(&self, role: &str) -> Vec<WorkItem> {
        self.worklist()
            .into_iter()
            .filter(|w| w.claimable_by(role))
            .collect()
    }

    /// Starts an activated activity of an instance.
    pub fn start_activity(&self, id: InstanceId, node: NodeId) -> Result<(), EngineError> {
        let (schema, blocks) = self.context_of(id)?;
        let ex = Execution::with_blocks(&schema, blocks);
        let mut inst = self
            .store
            .get(id)
            .ok_or_else(|| EngineError::NotFound(format!("{id}")))?;
        ex.start_activity(&mut inst.state, node)?;
        self.store.update(id, |i| i.state = inst.state.clone());
        self.monitor
            .record(EngineEvent::ActivityStarted { instance: id, node });
        Ok(())
    }

    /// Completes a running activity with its output values.
    pub fn complete_activity(
        &self,
        id: InstanceId,
        node: NodeId,
        writes: Vec<(DataId, Value)>,
    ) -> Result<(), EngineError> {
        let (schema, blocks) = self.context_of(id)?;
        let ex = Execution::with_blocks(&schema, blocks);
        let mut inst = self
            .store
            .get(id)
            .ok_or_else(|| EngineError::NotFound(format!("{id}")))?;
        ex.complete_activity(&mut inst.state, node, writes)?;
        let finished = ex.is_finished(&inst.state);
        self.store.update(id, |i| i.state = inst.state.clone());
        self.monitor
            .record(EngineEvent::ActivityCompleted { instance: id, node });
        if finished {
            self.monitor
                .record(EngineEvent::InstanceFinished { instance: id });
        }
        Ok(())
    }

    /// Pending XOR/loop decisions of an instance.
    pub fn pending_decisions(&self, id: InstanceId) -> Result<Vec<Decision>, EngineError> {
        let (schema, blocks) = self.context_of(id)?;
        let ex = Execution::with_blocks(&schema, blocks);
        let inst = self
            .store
            .get(id)
            .ok_or_else(|| EngineError::NotFound(format!("{id}")))?;
        Ok(ex.pending_decisions(&inst.state))
    }

    /// Resolves a pending XOR decision.
    pub fn decide_xor(
        &self,
        id: InstanceId,
        split: NodeId,
        branch_target: NodeId,
    ) -> Result<(), EngineError> {
        let (schema, blocks) = self.context_of(id)?;
        let ex = Execution::with_blocks(&schema, blocks);
        let mut inst = self
            .store
            .get(id)
            .ok_or_else(|| EngineError::NotFound(format!("{id}")))?;
        ex.decide_xor(&mut inst.state, split, branch_target)?;
        self.store.update(id, |i| i.state = inst.state.clone());
        Ok(())
    }

    /// Resolves a pending loop decision.
    pub fn decide_loop(
        &self,
        id: InstanceId,
        loop_end: NodeId,
        iterate: bool,
    ) -> Result<(), EngineError> {
        let (schema, blocks) = self.context_of(id)?;
        let ex = Execution::with_blocks(&schema, blocks);
        let mut inst = self
            .store
            .get(id)
            .ok_or_else(|| EngineError::NotFound(format!("{id}")))?;
        ex.decide_loop(&mut inst.state, loop_end, iterate)?;
        self.store.update(id, |i| i.state = inst.state.clone());
        Ok(())
    }

    /// Drives an instance forward with a driver (simulation), completing at
    /// most `max_activities`.
    pub fn run_instance(
        &self,
        id: InstanceId,
        driver: &mut dyn Driver,
        max_activities: Option<usize>,
    ) -> Result<usize, EngineError> {
        let (schema, blocks) = self.context_of(id)?;
        let ex = Execution::with_blocks(&schema, blocks);
        let mut inst = self
            .store
            .get(id)
            .ok_or_else(|| EngineError::NotFound(format!("{id}")))?;
        let n = ex.run(&mut inst.state, driver, max_activities)?;
        let finished = ex.is_finished(&inst.state);
        self.store.update(id, |i| i.state = inst.state.clone());
        if finished {
            self.monitor
                .record(EngineEvent::InstanceFinished { instance: id });
        }
        Ok(n)
    }

    /// Whether an instance has reached its end node.
    pub fn is_finished(&self, id: InstanceId) -> Result<bool, EngineError> {
        let (schema, blocks) = self.context_of(id)?;
        let ex = Execution::with_blocks(&schema, blocks);
        let inst = self
            .store
            .get(id)
            .ok_or_else(|| EngineError::NotFound(format!("{id}")))?;
        Ok(ex.is_finished(&inst.state))
    }

    /// All instance ids across all types.
    pub fn all_instances(&self) -> Vec<InstanceId> {
        self.repo
            .type_names()
            .into_iter()
            .flat_map(|t| self.store.instances_of(&t))
            .collect()
    }

    // ------------------------------------------------------------------
    // Ad-hoc change (instance level)
    // ------------------------------------------------------------------

    /// Applies an ad-hoc change to a single running instance.
    ///
    /// Thin wrapper over a one-operation change transaction
    /// ([`ProcessEngine::begin_change`] → stage → commit): the operation's
    /// structural preconditions, the full verification postcondition and
    /// the Fig. 1 state precondition all still apply, and on success the
    /// instance's bias, substitution block and adapted state are committed
    /// atomically — other instances are unaffected.
    #[deprecated(
        since = "0.3.0",
        note = "use begin_change(id) → stage(op) → preview()/commit(); one transaction \
                amortises verification over all staged ops"
    )]
    pub fn ad_hoc_change(&self, id: InstanceId, op: &ChangeOp) -> Result<(), EngineError> {
        let mut session = self.begin_change(id)?;
        session.stage(op)?;
        session.commit()?;
        Ok(())
    }

    /// Undoes the most recent ad-hoc change of an instance (inverse
    /// operation with full pre-/post-condition and state checking). The
    /// bias shrinks; if it becomes empty the instance is unbiased again
    /// and shares the deployed schema.
    pub fn undo_ad_hoc_change(&self, id: InstanceId) -> Result<(), EngineError> {
        let (current, blocks) = self.context_of(id)?;
        let inst = self
            .store
            .get(id)
            .ok_or_else(|| EngineError::NotFound(format!("{id}")))?;
        let mut materialized = (*current).clone();
        let mut bias = inst.bias.clone();
        let last = bias.ops.last().cloned().ok_or_else(|| {
            EngineError::Change(ChangeError::Precondition(
                "instance is unbiased; nothing to undo".into(),
            ))
        })?;
        let inv = adept_core::inverse_of(&materialized, &last).ok_or_else(|| {
            EngineError::Change(ChangeError::Precondition(format!(
                "{} is not invertible",
                last.op.name()
            )))
        })?;
        // State precondition of the inverse (e.g. cannot undo an insert
        // whose activity already ran).
        let probe_rec = {
            let mut probe = materialized.clone();
            apply_op(&mut probe, &inv)?
        };
        let verdict = check_fast_op(&current, &blocks, &inst.state, &probe_rec);
        if let Verdict::NotCompliant(c) = verdict {
            return Err(EngineError::Change(ChangeError::StatePrecondition {
                node: probe_rec
                    .anchor_nodes()
                    .first()
                    .copied()
                    .unwrap_or(NodeId(0)),
                reason: c.to_string(),
            }));
        }
        let rec =
            adept_core::undo_last(&mut materialized, &mut bias).map_err(EngineError::Change)?;
        let applied_inverse = rec.op.clone();
        let new_ex = Execution::new(&materialized)
            .map_err(|e| EngineError::Change(ChangeError::Precondition(e.to_string())))?;
        let mut st = inst.state.clone();
        let single: Delta = std::iter::once(rec).collect();
        adapt_instance_state(&current, &blocks, &new_ex, &single, &mut st)?;
        if !self.store.set_bias_if(
            id,
            inst.version,
            &inst.bias,
            &inst.state,
            bias,
            &materialized,
            st,
        ) {
            return Err(EngineError::Change(ChangeError::Precondition(format!(
                "concurrent change: {id} was modified while the undo committed"
            ))));
        }
        // The undo is a committed change like any other: it gets its own
        // transaction record (applied inverse + the op that would redo it)
        // so the audit trail can reconstruct the bias exactly.
        let seq = self.txn_log.append(
            TxnTarget::Instance(id),
            vec![applied_inverse],
            vec![Some(last.op.clone())],
        );
        self.monitor.record(EngineEvent::AdHocChanged {
            instance: id,
            op: format!("undo {}", last.op.name()),
        });
        self.monitor.record(EngineEvent::TxnCommitted {
            target: id.to_string(),
            ops: 1,
            seq,
        });
        Ok(())
    }

    // ------------------------------------------------------------------
    // Schema evolution and migration
    // ------------------------------------------------------------------

    /// Evolves a process type to a new version.
    ///
    /// Thin wrapper over a change transaction
    /// ([`ProcessEngine::begin_evolution`] → stage each op → commit), so
    /// the whole batch pays one verification pass and either becomes one
    /// new version or — if any operation fails — no version at all.
    #[deprecated(
        since = "0.3.0",
        note = "use begin_evolution(type) → stage(op) → preview()/commit() for staged, \
                previewable multi-op evolutions"
    )]
    pub fn evolve_type(
        &self,
        type_name: &str,
        ops: &[ChangeOp],
    ) -> Result<(u32, Delta), EngineError> {
        let mut session = self.begin_evolution(type_name)?;
        for op in ops {
            session.stage(op)?;
        }
        let receipt = session.commit()?;
        Ok((
            receipt
                .new_version
                .expect("evolution commits produce a version"),
            receipt.delta,
        ))
    }

    /// Migrates all instances of a type to its newest version (hop by hop
    /// through intermediate versions). With `threads > 1` the per-instance
    /// checks and adaptations run in parallel worker threads — migrating
    /// thousands of instances on the fly is exactly the workload the paper
    /// targets.
    pub fn migrate_all(
        &self,
        type_name: &str,
        options: &MigrationOptions,
        threads: usize,
    ) -> Result<MigrationReport, EngineError> {
        let to_version = self
            .repo
            .latest_version(type_name)
            .ok_or_else(|| EngineError::NotFound(format!("process type {type_name:?}")))?;
        let ids = self.store.instances_of(type_name);
        let from_version = ids
            .iter()
            .filter_map(|id| self.store.get(*id).map(|i| i.version))
            .min()
            .unwrap_or(to_version);

        let outcomes: Vec<InstanceOutcome> = if threads <= 1 || ids.len() < 2 {
            ids.iter()
                .map(|id| self.migrate_one(type_name, *id, to_version, options))
                .collect()
        } else {
            let chunk = ids.len().div_ceil(threads);
            let mut results: Vec<Vec<InstanceOutcome>> = Vec::new();
            crossbeam::scope(|scope| {
                let handles: Vec<_> = ids
                    .chunks(chunk)
                    .map(|part| {
                        scope.spawn(move |_| {
                            part.iter()
                                .map(|id| self.migrate_one(type_name, *id, to_version, options))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                for h in handles {
                    results.push(h.join().expect("migration worker panicked"));
                }
            })
            .expect("crossbeam scope");
            results.into_iter().flatten().collect()
        };

        let report = MigrationReport {
            type_name: type_name.to_string(),
            from_version,
            to_version,
            outcomes,
        };
        Ok(report)
    }

    /// Migrates one instance hop by hop up to `to_version`. Returns its
    /// final outcome (the first conflict stops the chain).
    fn migrate_one(
        &self,
        type_name: &str,
        id: InstanceId,
        to_version: u32,
        options: &MigrationOptions,
    ) -> InstanceOutcome {
        loop {
            let Some(inst) = self.store.get(id) else {
                return InstanceOutcome {
                    instance: id,
                    biased: false,
                    verdict: Verdict::conflict(
                        adept_core::ConflictKind::Structural,
                        "instance disappeared during migration",
                    ),
                };
            };
            if inst.version >= to_version {
                return InstanceOutcome {
                    instance: id,
                    biased: inst.is_biased(),
                    verdict: Verdict::Compliant,
                };
            }
            let next = inst.version + 1;
            let Some(delta) = self.repo.delta_between(type_name, inst.version) else {
                return InstanceOutcome {
                    instance: id,
                    biased: inst.is_biased(),
                    verdict: Verdict::conflict(
                        adept_core::ConflictKind::Structural,
                        format!("no recorded delta from V{} to V{next}", inst.version),
                    ),
                };
            };
            let Ok((current, blocks)) = self.context_of(id) else {
                return InstanceOutcome {
                    instance: id,
                    biased: inst.is_biased(),
                    verdict: Verdict::conflict(
                        adept_core::ConflictKind::Structural,
                        "cannot materialise current schema",
                    ),
                };
            };
            let Some(new_dep) = self.repo.deployed(type_name, next) else {
                return InstanceOutcome {
                    instance: id,
                    biased: inst.is_biased(),
                    verdict: Verdict::conflict(
                        adept_core::ConflictKind::Structural,
                        format!("V{next} not deployed"),
                    ),
                };
            };
            let res = migrate_instance(
                &current,
                &blocks,
                &new_dep.schema,
                &delta,
                &inst.bias,
                &inst.state,
                options,
            );
            match res.verdict {
                Verdict::Compliant => {
                    let adapted = res.adapted.expect("compliant results carry state");
                    self.store
                        .migrate(id, next, adapted, res.materialized.as_ref());
                    self.monitor.record(EngineEvent::Migrated {
                        instance: id,
                        to_version: next,
                    });
                }
                Verdict::NotCompliant(c) => {
                    self.monitor.record(EngineEvent::MigrationRejected {
                        instance: id,
                        reason: c.to_string(),
                    });
                    return InstanceOutcome {
                        instance: id,
                        biased: inst.is_biased(),
                        verdict: Verdict::NotCompliant(c),
                    };
                }
            }
        }
    }

    /// Re-checks compliance of an instance against a delta without applying
    /// anything (used by what-if tooling and tests).
    pub fn check_compliance(&self, id: InstanceId, delta: &Delta) -> Result<Verdict, EngineError> {
        let (current, blocks) = self.context_of(id)?;
        let inst = self
            .store
            .get(id)
            .ok_or_else(|| EngineError::NotFound(format!("{id}")))?;
        Ok(check_fast(&current, &blocks, &inst.state, delta))
    }

    /// Byte-level memory accounting (paper Fig. 2).
    pub fn memory(&self) -> MemoryBreakdown {
        self.store.memory(&self.repo)
    }

    /// Renders an instance for the monitoring component.
    pub fn render_instance(&self, id: InstanceId) -> Result<String, EngineError> {
        let (schema, _) = self.context_of(id)?;
        let inst = self
            .store
            .get(id)
            .ok_or_else(|| EngineError::NotFound(format!("{id}")))?;
        Ok(crate::monitor::render_instance_summary(
            &schema,
            &inst.state,
        ))
    }
}

impl Default for ProcessEngine {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
#[allow(deprecated)] // the wrapper entry points are exercised deliberately
mod tests {
    use super::*;
    use adept_core::NewActivity;
    use adept_model::SchemaBuilder;
    use adept_state::DefaultDriver;

    fn order_schema() -> ProcessSchema {
        let mut b = SchemaBuilder::new("online order");
        b.activity_with("get order", |a| a.role = Some("sales".into()));
        b.activity("collect data");
        b.and_split();
        b.branch();
        b.activity("confirm order");
        b.branch();
        b.activity("compose order");
        b.activity("pack goods");
        b.and_join();
        b.activity("deliver goods");
        b.build().unwrap()
    }

    #[test]
    fn full_lifecycle() {
        let engine = ProcessEngine::new();
        let name = engine.deploy(order_schema()).unwrap();
        let id = engine.create_instance(&name).unwrap();

        let wl = engine.worklist();
        assert_eq!(wl.len(), 1);
        assert_eq!(wl[0].activity, "get order");
        assert_eq!(engine.worklist_for("sales").len(), 1);
        assert_eq!(engine.worklist_for("warehouse").len(), 0);

        engine.start_activity(id, wl[0].node).unwrap();
        engine.complete_activity(id, wl[0].node, vec![]).unwrap();
        assert!(!engine.is_finished(id).unwrap());

        engine.run_instance(id, &mut DefaultDriver, None).unwrap();
        assert!(engine.is_finished(id).unwrap());
        assert!(engine
            .monitor
            .events()
            .iter()
            .any(|(_, e)| matches!(e, EngineEvent::InstanceFinished { .. })));
    }

    #[test]
    fn ad_hoc_change_biases_single_instance() {
        let engine = ProcessEngine::new();
        let name = engine.deploy(order_schema()).unwrap();
        let i1 = engine.create_instance(&name).unwrap();
        let i2 = engine.create_instance(&name).unwrap();

        let v1 = engine.repo.deployed(&name, 1).unwrap();
        let get = v1.schema.node_by_name("get order").unwrap().id;
        let collect = v1.schema.node_by_name("collect data").unwrap().id;
        engine
            .ad_hoc_change(
                i1,
                &ChangeOp::SerialInsert {
                    activity: NewActivity::named("check customer"),
                    pred: get,
                    succ: collect,
                },
            )
            .unwrap();

        let s1 = engine.store.schema_of(&engine.repo, i1).unwrap();
        let s2 = engine.store.schema_of(&engine.repo, i2).unwrap();
        assert!(s1.node_by_name("check customer").is_some());
        assert!(s2.node_by_name("check customer").is_none());
        assert!(engine.store.get(i1).unwrap().is_biased());
        assert!(!engine.store.get(i2).unwrap().is_biased());

        // The biased instance executes the inserted step.
        engine.run_instance(i1, &mut DefaultDriver, None).unwrap();
        assert!(engine.is_finished(i1).unwrap());
    }

    #[test]
    fn ad_hoc_change_rejected_by_state() {
        let engine = ProcessEngine::new();
        let name = engine.deploy(order_schema()).unwrap();
        let id = engine.create_instance(&name).unwrap();
        engine.run_instance(id, &mut DefaultDriver, None).unwrap();

        let v1 = engine.repo.deployed(&name, 1).unwrap();
        let get = v1.schema.node_by_name("get order").unwrap().id;
        let collect = v1.schema.node_by_name("collect data").unwrap().id;
        let err = engine
            .ad_hoc_change(
                id,
                &ChangeOp::SerialInsert {
                    activity: NewActivity::named("too late"),
                    pred: get,
                    succ: collect,
                },
            )
            .unwrap_err();
        assert!(matches!(
            err,
            EngineError::Change(ChangeError::StatePrecondition { .. })
        ));
    }

    #[test]
    fn evolution_and_migration_report() {
        let engine = ProcessEngine::new();
        let name = engine.deploy(order_schema()).unwrap();

        // Three instances at different progress points (paper Fig. 3).
        let i1 = engine.create_instance(&name).unwrap(); // fresh: compliant
        let i2 = engine.create_instance(&name).unwrap(); // will be biased w/ conflict
        let i3 = engine.create_instance(&name).unwrap(); // runs to completion: state conflict
        engine
            .run_instance(i1, &mut DefaultDriver, Some(2))
            .unwrap();
        engine.run_instance(i3, &mut DefaultDriver, None).unwrap();

        // I2's ad-hoc bias: sync(confirm order -> compose order).
        let v1 = engine.repo.deployed(&name, 1).unwrap();
        let confirm = v1.schema.node_by_name("confirm order").unwrap().id;
        let compose = v1.schema.node_by_name("compose order").unwrap().id;
        let pack = v1.schema.node_by_name("pack goods").unwrap().id;
        engine
            .ad_hoc_change(
                i2,
                &ChangeOp::InsertSyncEdge {
                    from: confirm,
                    to: compose,
                },
            )
            .unwrap();

        // ΔT: insert "send questions" + sync to confirm order (Fig. 1).
        let (v2, _) = engine
            .evolve_type(
                &name,
                &[ChangeOp::SerialInsert {
                    activity: NewActivity::named("send questions"),
                    pred: compose,
                    succ: pack,
                }],
            )
            .unwrap();
        assert_eq!(v2, 2);
        let sq = engine
            .repo
            .deployed(&name, 2)
            .unwrap()
            .schema
            .node_by_name("send questions")
            .unwrap()
            .id;
        let (v3, _) = engine
            .evolve_type(
                &name,
                &[ChangeOp::InsertSyncEdge {
                    from: sq,
                    to: confirm,
                }],
            )
            .unwrap();
        assert_eq!(v3, 3);

        let report = engine
            .migrate_all(&name, &MigrationOptions::default(), 1)
            .unwrap();
        assert_eq!(report.total(), 3);
        assert_eq!(report.migrated(), 1, "{report}");
        assert_eq!(report.conflicts(adept_core::ConflictKind::Structural), 1);
        assert_eq!(report.conflicts(adept_core::ConflictKind::State), 1);

        // The migrated instance continues and executes the new activity.
        engine.run_instance(i1, &mut DefaultDriver, None).unwrap();
        assert!(engine.is_finished(i1).unwrap());
        let inst1 = engine.store.get(i1).unwrap();
        assert_eq!(inst1.version, 3);
        assert!(inst1.state.history.started_activities().contains(&sq));
    }

    #[test]
    fn parallel_migration_matches_sequential() {
        let engine = ProcessEngine::new();
        let name = engine.deploy(order_schema()).unwrap();
        for _ in 0..64 {
            let id = engine.create_instance(&name).unwrap();
            engine
                .run_instance(id, &mut DefaultDriver, Some(2))
                .unwrap();
        }
        let v1 = engine.repo.deployed(&name, 1).unwrap();
        let compose = v1.schema.node_by_name("compose order").unwrap().id;
        let pack = v1.schema.node_by_name("pack goods").unwrap().id;
        engine
            .evolve_type(
                &name,
                &[ChangeOp::SerialInsert {
                    activity: NewActivity::named("send questions"),
                    pred: compose,
                    succ: pack,
                }],
            )
            .unwrap();
        let report = engine
            .migrate_all(&name, &MigrationOptions::default(), 4)
            .unwrap();
        assert_eq!(report.total(), 64);
        assert_eq!(report.migrated(), 64, "{report}");
    }

    #[test]
    fn undo_ad_hoc_change_restores_unbiased_state() {
        let engine = ProcessEngine::new();
        let name = engine.deploy(order_schema()).unwrap();
        let id = engine.create_instance(&name).unwrap();
        let v1 = engine.repo.deployed(&name, 1).unwrap();
        let get = v1.schema.node_by_name("get order").unwrap().id;
        let collect = v1.schema.node_by_name("collect data").unwrap().id;
        engine
            .ad_hoc_change(
                id,
                &ChangeOp::SerialInsert {
                    activity: NewActivity::named("temp step"),
                    pred: get,
                    succ: collect,
                },
            )
            .unwrap();
        assert!(engine.store.get(id).unwrap().is_biased());
        engine.undo_ad_hoc_change(id).unwrap();
        assert!(!engine.store.get(id).unwrap().is_biased());
        // Undoing again fails: nothing left.
        assert!(engine.undo_ad_hoc_change(id).is_err());
        // The instance runs to completion on the restored schema.
        engine.run_instance(id, &mut DefaultDriver, None).unwrap();
        assert!(engine.is_finished(id).unwrap());
    }

    #[test]
    fn undo_rejected_when_inserted_activity_already_ran() {
        let engine = ProcessEngine::new();
        let name = engine.deploy(order_schema()).unwrap();
        let id = engine.create_instance(&name).unwrap();
        let v1 = engine.repo.deployed(&name, 1).unwrap();
        let get = v1.schema.node_by_name("get order").unwrap().id;
        let collect = v1.schema.node_by_name("collect data").unwrap().id;
        engine
            .ad_hoc_change(
                id,
                &ChangeOp::SerialInsert {
                    activity: NewActivity::named("ran already"),
                    pred: get,
                    succ: collect,
                },
            )
            .unwrap();
        // Execute past the inserted activity.
        engine
            .run_instance(id, &mut DefaultDriver, Some(2))
            .unwrap();
        let err = engine.undo_ad_hoc_change(id).unwrap_err();
        assert!(matches!(
            err,
            EngineError::Change(ChangeError::StatePrecondition { .. })
        ));
    }

    #[test]
    fn instance_rendering_via_engine() {
        let engine = ProcessEngine::new();
        let name = engine.deploy(order_schema()).unwrap();
        let id = engine.create_instance(&name).unwrap();
        let text = engine.render_instance(id).unwrap();
        assert!(text.contains("get order"));
    }
}
