//! Execution histories and their *reduction* for loop-tolerant compliance.
//!
//! The compliance criterion of the paper is based on a *relaxed notion of
//! trace equivalence* that "works correctly in connection with loop backs"
//! [Rinderle et al. 2004]: instead of the full execution history, only the
//! events of the **last** iteration of each loop are considered when
//! deciding whether an instance could have produced its trace on a changed
//! schema. [`ExecutionHistory::reduced`] implements exactly that projection.

use adept_model::{Blocks, DataId, NodeId, ProcessSchema, Value};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// One entry of an execution history.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// A (user-visible) activity was started.
    Started {
        /// The activity node.
        node: NodeId,
        /// The mandatory input parameters of the activity at start time
        /// (its read signature). Compliance replay compares this against
        /// the changed schema: a changed signature for an already-started
        /// activity means the trace is not reproducible.
        reads: Vec<DataId>,
    },
    /// An activity completed, writing the given data values.
    Completed {
        /// The activity node.
        node: NodeId,
        /// Data written on completion, in write order.
        writes: Vec<(DataId, Value)>,
    },
    /// An XOR split chose a branch (either by guard evaluation or by an
    /// external decision). `branch_target` is the first node of the chosen
    /// branch (the matching join for an empty branch).
    XorChosen {
        /// The deciding split node.
        split: NodeId,
        /// First node of the chosen branch.
        branch_target: NodeId,
    },
    /// A loop end decided whether to iterate again.
    LoopDecided {
        /// The deciding loop end node.
        loop_end: NodeId,
        /// `true` to run the body again, `false` to exit the loop.
        iterate: bool,
    },
    /// The body of a loop was reset for another iteration (marks the
    /// boundary that history reduction cuts at).
    LoopReset {
        /// The loop start whose body was reset.
        loop_start: NodeId,
    },
}

impl Event {
    /// The node this event is attributed to.
    pub fn node(&self) -> NodeId {
        match self {
            Event::Started { node, .. } | Event::Completed { node, .. } => *node,
            Event::XorChosen { split, .. } => *split,
            Event::LoopDecided { loop_end, .. } => *loop_end,
            Event::LoopReset { loop_start } => *loop_start,
        }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::Started { node, .. } => write!(f, "start({node})"),
            Event::Completed { node, writes } => {
                write!(f, "complete({node}")?;
                for (d, v) in writes {
                    write!(f, ", {d}:={v}")?;
                }
                f.write_str(")")
            }
            Event::XorChosen {
                split,
                branch_target,
            } => write!(f, "xor({split} -> {branch_target})"),
            Event::LoopDecided { loop_end, iterate } => {
                write!(f, "loop({loop_end}, iterate={iterate})")
            }
            Event::LoopReset { loop_start } => write!(f, "reset({loop_start})"),
        }
    }
}

/// The ordered execution history of one instance.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ExecutionHistory {
    /// Events in execution order.
    pub events: Vec<Event>,
}

impl ExecutionHistory {
    /// An empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event.
    pub fn record(&mut self, e: Event) {
        self.events.push(e);
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the history is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Activities that have a `Started` event, in first-start order.
    pub fn started_activities(&self) -> Vec<NodeId> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for e in &self.events {
            if let Event::Started { node, .. } = e {
                if seen.insert(*node) {
                    out.push(*node);
                }
            }
        }
        out
    }

    /// The *reduced* execution history: for every loop, only the events of
    /// its last (current) iteration survive. `blocks` must describe the
    /// schema the history was recorded on.
    ///
    /// A [`Event::LoopReset`] for loop start `ls` discards every earlier
    /// event attributed to a node of the loop body (including the loop
    /// start/end themselves and any nested blocks), exactly implementing
    /// the loop-purged trace of the underlying compliance theory.
    pub fn reduced(&self, schema: &ProcessSchema, blocks: &Blocks) -> ExecutionHistory {
        let mut events: Vec<Event> = Vec::with_capacity(self.events.len());
        for e in &self.events {
            if let Event::LoopReset { loop_start } = e {
                if let Some(info) = blocks.by_split.get(loop_start) {
                    let mut body: BTreeSet<NodeId> = info.interior();
                    body.insert(info.split);
                    body.insert(info.join);
                    events.retain(|old| !body.contains(&old.node()));
                    // The reset itself is also an earlier-iteration artefact.
                    continue;
                }
                // Loop no longer known (should not happen on the recording
                // schema); keep the event so nothing is silently lost.
                let _ = schema;
            }
            events.push(e.clone());
        }
        ExecutionHistory { events }
    }

    /// Approximate deep size in bytes (for storage accounting).
    pub fn approx_size(&self) -> usize {
        use std::mem::size_of;
        let mut s = size_of::<Self>() + self.events.capacity() * size_of::<Event>();
        for e in &self.events {
            if let Event::Completed { writes, .. } = e {
                s += writes.capacity() * size_of::<(DataId, Value)>();
                for (_, v) in writes {
                    if let Value::Str(st) = v {
                        s += st.capacity();
                    }
                }
            }
        }
        s
    }
}

impl fmt::Display for ExecutionHistory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adept_model::{LoopCond, SchemaBuilder};

    #[test]
    fn reduction_drops_earlier_iterations() {
        let mut b = SchemaBuilder::new("loop");
        b.loop_start();
        let body = b.activity("body");
        b.loop_end(LoopCond::Times(3));
        let s = b.build().unwrap();
        let blocks = Blocks::analyze(&s).unwrap();
        let ls = s
            .nodes()
            .find(|n| n.kind == adept_model::NodeKind::LoopStart)
            .unwrap()
            .id;
        let le = s
            .nodes()
            .find(|n| n.kind == adept_model::NodeKind::LoopEnd)
            .unwrap()
            .id;

        let mut h = ExecutionHistory::new();
        // Iteration 1.
        h.record(Event::Started {
            node: body,
            reads: vec![],
        });
        h.record(Event::Completed {
            node: body,
            writes: vec![],
        });
        h.record(Event::LoopDecided {
            loop_end: le,
            iterate: true,
        });
        h.record(Event::LoopReset { loop_start: ls });
        // Iteration 2 (final).
        h.record(Event::Started {
            node: body,
            reads: vec![],
        });
        h.record(Event::Completed {
            node: body,
            writes: vec![],
        });
        h.record(Event::LoopDecided {
            loop_end: le,
            iterate: false,
        });

        let r = h.reduced(&s, &blocks);
        // Only the final iteration remains: start, complete, final decision.
        assert_eq!(r.events.len(), 3);
        assert!(matches!(r.events[0], Event::Started { node, .. } if node == body));
        assert!(
            matches!(r.events[2], Event::LoopDecided { iterate: false, .. }),
            "final decision must survive"
        );
    }

    #[test]
    fn reduction_keeps_events_outside_loop() {
        let mut b = SchemaBuilder::new("loop");
        let before = b.activity("before");
        b.loop_start();
        let body = b.activity("body");
        b.loop_end(LoopCond::Times(2));
        let s = b.build().unwrap();
        let blocks = Blocks::analyze(&s).unwrap();
        let ls = s
            .nodes()
            .find(|n| n.kind == adept_model::NodeKind::LoopStart)
            .unwrap()
            .id;

        let mut h = ExecutionHistory::new();
        h.record(Event::Started {
            node: before,
            reads: vec![],
        });
        h.record(Event::Completed {
            node: before,
            writes: vec![],
        });
        h.record(Event::Started {
            node: body,
            reads: vec![],
        });
        h.record(Event::LoopReset { loop_start: ls });
        let r = h.reduced(&s, &blocks);
        assert_eq!(
            r.started_activities(),
            vec![before],
            "outside-loop events survive, body iteration was cut"
        );
    }

    #[test]
    fn started_activities_dedups() {
        let mut h = ExecutionHistory::new();
        h.record(Event::Started {
            node: NodeId(1),
            reads: vec![],
        });
        h.record(Event::Started {
            node: NodeId(2),
            reads: vec![],
        });
        h.record(Event::Started {
            node: NodeId(1),
            reads: vec![],
        });
        assert_eq!(h.started_activities(), vec![NodeId(1), NodeId(2)]);
    }
}
