//! Runtime error type of the execution semantics.

use adept_model::{DataId, ModelError, NodeId};
use std::fmt;

/// Errors raised while executing or replaying an instance.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// A model-level lookup or type error.
    Model(ModelError),
    /// The node is not an activity and cannot be started manually.
    NotAnActivity(NodeId),
    /// The node is not in the `Activated` state (paper: state-related
    /// conflict when this happens during compliance replay).
    NotActivatable(NodeId),
    /// The node is not in the `Running` state.
    NotRunning(NodeId),
    /// No decision is pending at this node.
    NoDecisionPending(NodeId),
    /// All guards of an XOR split evaluated to false and no else branch
    /// exists.
    NoBranchMatches(NodeId),
    /// A branch decision references a target that matches no branch of the
    /// split (occurs when replaying a history whose chosen branch no longer
    /// exists on the changed schema).
    BranchNotFound {
        /// The split node.
        split: NodeId,
        /// The unmatched branch target.
        target: NodeId,
    },
    /// A mandatory input parameter is unwritten at activity start.
    MissingInput {
        /// The starting activity.
        node: NodeId,
        /// The unwritten data element.
        data: DataId,
    },
    /// A declared output was not supplied at activity completion.
    MissingOutput {
        /// The completing activity.
        node: NodeId,
        /// The missing data element.
        data: DataId,
    },
    /// An undeclared output was supplied at activity completion.
    UndeclaredWrite {
        /// The completing activity.
        node: NodeId,
        /// The undeclared data element.
        data: DataId,
    },
    /// A loop end has no usable continuation condition.
    LoopNotDecidable(NodeId),
    /// No work, no decisions, not finished: the instance cannot progress.
    Stuck,
    /// Safety valve for runaway loops in automatic drivers.
    StepLimitExceeded,
    /// During replay: the recorded read signature of a started activity
    /// does not match the schema's current mandatory inputs (a data-flow
    /// change touched an already-executed activity).
    SignatureMismatch {
        /// The affected activity.
        node: NodeId,
    },
    /// During replay: a recorded branching/loop decision of this node was
    /// never consumed — the deciding node can no longer fire in the
    /// recorded order, so the trace is not reproducible.
    DecisionNotReproducible(NodeId),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Model(e) => write!(f, "model error: {e}"),
            RuntimeError::NotAnActivity(n) => write!(f, "{n} is not an activity"),
            RuntimeError::NotActivatable(n) => write!(f, "{n} is not activated"),
            RuntimeError::NotRunning(n) => write!(f, "{n} is not running"),
            RuntimeError::NoDecisionPending(n) => write!(f, "no decision pending at {n}"),
            RuntimeError::NoBranchMatches(n) => {
                write!(
                    f,
                    "no branch guard matches at {n} and no else branch exists"
                )
            }
            RuntimeError::BranchNotFound { split, target } => {
                write!(f, "no branch of {split} matches target {target}")
            }
            RuntimeError::MissingInput { node, data } => {
                write!(f, "mandatory input {data} of {node} is unwritten")
            }
            RuntimeError::MissingOutput { node, data } => {
                write!(f, "declared output {data} of {node} was not supplied")
            }
            RuntimeError::UndeclaredWrite { node, data } => {
                write!(f, "{node} wrote undeclared data element {data}")
            }
            RuntimeError::LoopNotDecidable(n) => write!(f, "loop end {n} is not decidable"),
            RuntimeError::Stuck => f.write_str("instance cannot progress"),
            RuntimeError::StepLimitExceeded => f.write_str("step limit exceeded"),
            RuntimeError::SignatureMismatch { node } => {
                write!(f, "read signature of {node} changed since it was started")
            }
            RuntimeError::DecisionNotReproducible(n) => {
                write!(f, "recorded decision at {n} can no longer be reproduced")
            }
        }
    }
}

impl std::error::Error for RuntimeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RuntimeError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for RuntimeError {
    fn from(e: ModelError) -> Self {
        RuntimeError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = RuntimeError::Model(ModelError::UnknownNode(NodeId(1)));
        assert!(e.to_string().contains("unknown node"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&RuntimeError::Stuck).is_none());
    }

    #[test]
    fn from_model_error() {
        let e: RuntimeError = ModelError::UnknownNode(NodeId(2)).into();
        assert!(matches!(e, RuntimeError::Model(_)));
    }
}
