//! # adept-state — runtime semantics of ADEPT2 process instances
//!
//! This crate implements everything about a *running* instance of a schema
//! from `adept-model`:
//!
//! * [`Marking`] — node states (`NotActivated`, `Activated`, `Running`,
//!   `Completed`, `Skipped`) and edge states (`NotSignaled`,
//!   `TrueSignaled`, `FalseSignaled`), stored minimally (defaults omitted)
//!   to support ADEPT2's redundant-free instance representation;
//! * [`Execution`] — the interpreter: activation rules, automatic firing
//!   of silent nodes, XOR guard evaluation, external decisions, dead-path
//!   elimination and loop-back body resets;
//! * [`ExecutionHistory`] — the recorded trace, and its *reduction* (only
//!   the last iteration of every loop survives) that the compliance
//!   criterion of the paper is defined over;
//! * [`Execution::replay`] — reproducing a history on a (possibly changed)
//!   schema, the semantic oracle for compliance checking;
//! * [`DataContext`] — instance data values with full write logs.
//!
//! ## The hot path: the compiled tier
//!
//! [`Execution`] is the reference semantics; [`CompiledExecution`] is
//! the same semantics run over a flat `adept_model::CompiledSchema`
//! arena — slot-indexed node/edge arrays and precomputed adjacency
//! instead of per-query `BTreeMap` walks — carrying state in a
//! [`CompactMarking`] (dense vectors indexed by arena slot) for the
//! duration of a multi-step run. The contract is observational
//! equivalence: identical enabled sets, events and errors, and
//! byte-identical serialized [`InstanceState`] (the compact form
//! converts in and writes back, so snapshots and audit never see it).
//! Unbiased instances run compiled by default; ad-hoc-changed ones fall
//! back to the interpreter. See `docs/EXECUTION_CORE.md`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod compact;
pub mod datactx;
pub mod error;
pub mod execution;
pub mod history;
pub mod marking;
pub mod replay;

pub use compact::{CompactMarking, CompiledExecution};
pub use datactx::{DataContext, WriteRecord};
pub use error::RuntimeError;
pub use execution::{
    enabled_diff, Decision, DefaultDriver, Driver, Execution, InstanceState, RunEvent,
};
pub use history::{Event, ExecutionHistory};
pub use marking::{EdgeState, Marking, NodeState};
pub use replay::ReplayScript;
