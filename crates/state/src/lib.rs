//! # adept-state — runtime semantics of ADEPT2 process instances
//!
//! This crate implements everything about a *running* instance of a schema
//! from `adept-model`:
//!
//! * [`Marking`] — node states (`NotActivated`, `Activated`, `Running`,
//!   `Completed`, `Skipped`) and edge states (`NotSignaled`,
//!   `TrueSignaled`, `FalseSignaled`), stored minimally (defaults omitted)
//!   to support ADEPT2's redundant-free instance representation;
//! * [`Execution`] — the interpreter: activation rules, automatic firing
//!   of silent nodes, XOR guard evaluation, external decisions, dead-path
//!   elimination and loop-back body resets;
//! * [`ExecutionHistory`] — the recorded trace, and its *reduction* (only
//!   the last iteration of every loop survives) that the compliance
//!   criterion of the paper is defined over;
//! * [`Execution::replay`] — reproducing a history on a (possibly changed)
//!   schema, the semantic oracle for compliance checking;
//! * [`DataContext`] — instance data values with full write logs.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod datactx;
pub mod error;
pub mod execution;
pub mod history;
pub mod marking;
pub mod replay;

pub use datactx::{DataContext, WriteRecord};
pub use error::RuntimeError;
pub use execution::{
    enabled_diff, Decision, DefaultDriver, Driver, Execution, InstanceState, RunEvent,
};
pub use history::{Event, ExecutionHistory};
pub use marking::{EdgeState, Marking, NodeState};
pub use replay::ReplayScript;
