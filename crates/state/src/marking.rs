//! Node and edge markings of process instances.
//!
//! ADEPT2 instances are stored *redundant-free*: an unbiased instance is
//! just a reference to its schema plus instance-specific data — essentially
//! this marking (paper Fig. 2). The marking therefore stores only
//! non-default states: nodes absent from the map are `NotActivated`, edges
//! absent from the map are `NotSignaled`.

use adept_model::{EdgeId, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Execution state of a node ("NS" in the paper's compliance conditions).
///
/// The paper's `Disabled` state is called [`NodeState::Skipped`] here: a
/// node on a not-taken XOR branch (dead path) that can no longer execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum NodeState {
    /// Not yet reached (default).
    #[default]
    NotActivated,
    /// All preconditions fulfilled; the work item is offered.
    Activated,
    /// Execution has started.
    Running,
    /// Execution finished.
    Completed,
    /// On a dead path; can no longer execute (paper: `Disabled`).
    Skipped,
}

impl NodeState {
    /// Whether the node has been entered (running, completed or skipped).
    pub fn entered(self) -> bool {
        matches!(
            self,
            NodeState::Running | NodeState::Completed | NodeState::Skipped
        )
    }

    /// Whether the node still lies ahead (may yet be started).
    pub fn pending(self) -> bool {
        matches!(self, NodeState::NotActivated | NodeState::Activated)
    }
}

impl fmt::Display for NodeState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            NodeState::NotActivated => "NotActivated",
            NodeState::Activated => "Activated",
            NodeState::Running => "Running",
            NodeState::Completed => "Completed",
            NodeState::Skipped => "Skipped",
        })
    }
}

/// Signal state of an edge ("ES" in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum EdgeState {
    /// Not yet signaled (default).
    #[default]
    NotSignaled,
    /// The source completed; the edge fires (paper: `TRUE_Signaled`).
    TrueSignaled,
    /// The source was skipped; dead-path elimination (paper: `FALSE_Signaled`).
    FalseSignaled,
}

impl EdgeState {
    /// Whether the edge has been signaled either way.
    pub fn signaled(self) -> bool {
        self != EdgeState::NotSignaled
    }
}

impl fmt::Display for EdgeState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            EdgeState::NotSignaled => "NotSignaled",
            EdgeState::TrueSignaled => "TrueSignaled",
            EdgeState::FalseSignaled => "FalseSignaled",
        })
    }
}

/// The complete runtime marking of one process instance.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Marking {
    nodes: BTreeMap<NodeId, NodeState>,
    edges: BTreeMap<EdgeId, EdgeState>,
    /// Completed iteration count per `LoopEnd` node for the current loop
    /// entry (cleared when an enclosing loop resets the body).
    loop_counts: BTreeMap<NodeId, u32>,
}

impl Marking {
    /// A fresh marking: every node `NotActivated`, every edge `NotSignaled`.
    pub fn new() -> Self {
        Self::default()
    }

    /// State of a node (default `NotActivated`).
    pub fn node(&self, n: NodeId) -> NodeState {
        self.nodes.get(&n).copied().unwrap_or_default()
    }

    /// State of an edge (default `NotSignaled`).
    pub fn edge(&self, e: EdgeId) -> EdgeState {
        self.edges.get(&e).copied().unwrap_or_default()
    }

    /// Sets a node state (removing default states keeps the map minimal).
    pub fn set_node(&mut self, n: NodeId, s: NodeState) {
        if s == NodeState::NotActivated {
            self.nodes.remove(&n);
        } else {
            self.nodes.insert(n, s);
        }
    }

    /// Sets an edge state (removing default states keeps the map minimal).
    pub fn set_edge(&mut self, e: EdgeId, s: EdgeState) {
        if s == EdgeState::NotSignaled {
            self.edges.remove(&e);
        } else {
            self.edges.insert(e, s);
        }
    }

    /// Completed iterations of the loop closed by `loop_end`.
    pub fn loop_count(&self, loop_end: NodeId) -> u32 {
        self.loop_counts.get(&loop_end).copied().unwrap_or(0)
    }

    /// Increments the loop counter and returns the new value.
    pub fn bump_loop(&mut self, loop_end: NodeId) -> u32 {
        let c = self.loop_counts.entry(loop_end).or_insert(0);
        *c += 1;
        *c
    }

    /// Clears the loop counter (when an enclosing loop resets the body).
    pub fn clear_loop(&mut self, loop_end: NodeId) {
        self.loop_counts.remove(&loop_end);
    }

    /// Sets a loop counter to an absolute value (`0` clears the entry, so
    /// the stored map stays minimal). Used when a marking is re-assembled
    /// from a compact per-slot representation.
    pub fn set_loop_count(&mut self, loop_end: NodeId, count: u32) {
        if count == 0 {
            self.loop_counts.remove(&loop_end);
        } else {
            self.loop_counts.insert(loop_end, count);
        }
    }

    /// All non-zero loop counters, in id order.
    pub fn loop_counters(&self) -> impl Iterator<Item = (NodeId, u32)> + '_ {
        self.loop_counts.iter().map(|(n, c)| (*n, *c))
    }

    /// All explicitly marked nodes (non-`NotActivated`), in id order.
    pub fn marked_nodes(&self) -> impl Iterator<Item = (NodeId, NodeState)> + '_ {
        self.nodes.iter().map(|(n, s)| (*n, *s))
    }

    /// All explicitly signaled edges, in id order.
    pub fn signaled_edges(&self) -> impl Iterator<Item = (EdgeId, EdgeState)> + '_ {
        self.edges.iter().map(|(e, s)| (*e, *s))
    }

    /// Nodes currently in the given state.
    pub fn nodes_in(&self, s: NodeState) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes
            .iter()
            .filter(move |(_, st)| **st == s)
            .map(|(n, _)| *n)
    }

    /// Removes all markings of the given node (used by state adaptation
    /// when a node is deleted).
    pub fn forget_node(&mut self, n: NodeId) {
        self.nodes.remove(&n);
        self.loop_counts.remove(&n);
    }

    /// Removes the marking of the given edge.
    pub fn forget_edge(&mut self, e: EdgeId) {
        self.edges.remove(&e);
    }

    /// Adopts the loop iteration counters of another marking (used when a
    /// marking is re-derived by reduced-history replay, which flattens
    /// earlier iterations and would otherwise reset `Times(n)` progress).
    pub fn copy_loop_counts_from(&mut self, other: &Marking) {
        self.loop_counts = other.loop_counts.clone();
    }

    /// Compares only node and edge states (ignoring loop counters), which
    /// is the equivalence that matters for compliance/adaptation oracles:
    /// reduced-history replay intentionally flattens earlier iterations.
    pub fn same_states(&self, other: &Marking) -> bool {
        self.nodes == other.nodes && self.edges == other.edges
    }

    /// Approximate deep size in bytes (for the Fig. 2 storage experiments).
    pub fn approx_size(&self) -> usize {
        use std::mem::size_of;
        size_of::<Self>()
            + self.nodes.len() * (size_of::<NodeId>() + size_of::<NodeState>() + 32)
            + self.edges.len() * (size_of::<EdgeId>() + size_of::<EdgeState>() + 32)
            + self.loop_counts.len() * (size_of::<NodeId>() + size_of::<u32>() + 32)
    }
}

impl fmt::Display for Marking {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "nodes{{")?;
        for (i, (n, s)) in self.nodes.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{n}={s}")?;
        }
        write!(f, "}} edges{{")?;
        for (i, (e, s)) in self.edges.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{e}={s}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_not_stored() {
        let mut m = Marking::new();
        assert_eq!(m.node(NodeId(5)), NodeState::NotActivated);
        m.set_node(NodeId(5), NodeState::Running);
        assert_eq!(m.node(NodeId(5)), NodeState::Running);
        m.set_node(NodeId(5), NodeState::NotActivated);
        assert_eq!(m.marked_nodes().count(), 0);
        m.set_edge(EdgeId(1), EdgeState::TrueSignaled);
        m.set_edge(EdgeId(1), EdgeState::NotSignaled);
        assert_eq!(m.signaled_edges().count(), 0);
    }

    #[test]
    fn loop_counters() {
        let mut m = Marking::new();
        let le = NodeId(9);
        assert_eq!(m.loop_count(le), 0);
        assert_eq!(m.bump_loop(le), 1);
        assert_eq!(m.bump_loop(le), 2);
        m.clear_loop(le);
        assert_eq!(m.loop_count(le), 0);
    }

    #[test]
    fn same_states_ignores_loop_counts() {
        let mut a = Marking::new();
        let mut b = Marking::new();
        a.set_node(NodeId(1), NodeState::Completed);
        b.set_node(NodeId(1), NodeState::Completed);
        a.bump_loop(NodeId(2));
        assert!(a.same_states(&b));
        assert_ne!(a, b);
    }

    #[test]
    fn state_predicates() {
        assert!(NodeState::Running.entered());
        assert!(NodeState::Skipped.entered());
        assert!(!NodeState::Activated.entered());
        assert!(NodeState::Activated.pending());
        assert!(!NodeState::Completed.pending());
        assert!(EdgeState::FalseSignaled.signaled());
        assert!(!EdgeState::NotSignaled.signaled());
    }
}
