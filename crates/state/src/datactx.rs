//! Per-instance data contexts: current values of data elements.

use adept_model::{DataId, ModelError, NodeId, ProcessSchema, Value};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One logged write to a data element.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WriteRecord {
    /// The writing node.
    pub node: NodeId,
    /// The data element.
    pub data: DataId,
    /// The written value.
    pub value: Value,
}

/// The data context of one process instance: current values plus the
/// complete write log (ADEPT keeps write histories so that loop iterations
/// and change operations can reason about data provenance).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DataContext {
    values: BTreeMap<DataId, Value>,
    log: Vec<WriteRecord>,
}

impl DataContext {
    /// An empty context (all data elements `Null`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Current value of a data element (`Null` if never written).
    pub fn value(&self, d: DataId) -> &Value {
        self.values.get(&d).unwrap_or(&Value::Null)
    }

    /// Whether the element currently holds a non-`Null` value.
    pub fn is_written(&self, d: DataId) -> bool {
        !self.value(d).is_null()
    }

    /// Validates a prospective write without applying it: the data
    /// element must exist and the value must match its declared type.
    /// [`DataContext::write`] enforces exactly this check, so callers
    /// that need all-or-nothing write batches (the interpreter validates
    /// a completion's full write set before mutating anything) stay in
    /// lockstep with it by construction.
    pub fn validate_write(
        schema: &ProcessSchema,
        data: DataId,
        value: &Value,
    ) -> Result<(), ModelError> {
        let decl = schema.data_element(data)?;
        if let Some(vt) = value.value_type() {
            if vt != decl.ty {
                return Err(ModelError::TypeMismatch {
                    data,
                    expected: decl.ty.to_string(),
                    got: value.to_string(),
                });
            }
        }
        Ok(())
    }

    /// Records a write, enforcing the declared type of the element.
    pub fn write(
        &mut self,
        schema: &ProcessSchema,
        node: NodeId,
        data: DataId,
        value: Value,
    ) -> Result<(), ModelError> {
        Self::validate_write(schema, data, &value)?;
        self.values.insert(data, value.clone());
        self.log.push(WriteRecord { node, data, value });
        Ok(())
    }

    /// The complete write log, in write order.
    pub fn log(&self) -> &[WriteRecord] {
        &self.log
    }

    /// All current non-null values, in data id order.
    pub fn values(&self) -> impl Iterator<Item = (DataId, &Value)> {
        self.values.iter().map(|(d, v)| (*d, v))
    }

    /// Approximate deep size in bytes (for storage accounting).
    pub fn approx_size(&self) -> usize {
        use std::mem::size_of;
        let mut s = size_of::<Self>();
        for (_, v) in self.values.iter() {
            s += size_of::<DataId>() + v.approx_size() + 32;
        }
        s += self.log.capacity() * size_of::<WriteRecord>();
        for r in &self.log {
            if let Value::Str(st) = &r.value {
                s += st.capacity();
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adept_model::{SchemaBuilder, ValueType};

    fn schema_with_data() -> (ProcessSchema, NodeId, DataId) {
        let mut b = SchemaBuilder::new("d");
        let d = b.data("amount", ValueType::Int);
        let a = b.activity("a");
        b.write(a, d);
        (b.build().unwrap(), a, d)
    }

    #[test]
    fn write_and_read_back() {
        let (s, a, d) = schema_with_data();
        let mut ctx = DataContext::new();
        assert!(!ctx.is_written(d));
        ctx.write(&s, a, d, Value::Int(42)).unwrap();
        assert_eq!(ctx.value(d), &Value::Int(42));
        assert!(ctx.is_written(d));
        assert_eq!(ctx.log().len(), 1);
    }

    #[test]
    fn type_mismatch_is_rejected() {
        let (s, a, d) = schema_with_data();
        let mut ctx = DataContext::new();
        let err = ctx.write(&s, a, d, Value::Str("x".into())).unwrap_err();
        assert!(matches!(err, ModelError::TypeMismatch { .. }));
        assert!(!ctx.is_written(d));
    }

    #[test]
    fn overwrites_keep_log() {
        let (s, a, d) = schema_with_data();
        let mut ctx = DataContext::new();
        ctx.write(&s, a, d, Value::Int(1)).unwrap();
        ctx.write(&s, a, d, Value::Int(2)).unwrap();
        assert_eq!(ctx.value(d), &Value::Int(2));
        assert_eq!(ctx.log().len(), 2);
    }

    #[test]
    fn unknown_data_rejected() {
        let (s, a, _) = schema_with_data();
        let mut ctx = DataContext::new();
        assert!(ctx.write(&s, a, DataId(99), Value::Int(1)).is_err());
    }
}
