//! The ADEPT2 execution semantics: activation rules, automatic firing of
//! silent nodes, XOR branching, dead-path elimination and loop backs.
//!
//! The interpreter operates on an [`InstanceState`] (marking + history +
//! data context) against a fixed schema. All control logic lives in
//! [`Execution::propagate`], a fixpoint sweep that:
//!
//! 1. activates nodes whose incoming control edges are `TrueSignaled`
//!    (XOR joins need one, everything else needs all) and whose incoming
//!    sync edges are signaled either way;
//! 2. skips nodes on dead paths (`FalseSignaled` inputs), signalling
//!    `FalseSignaled` onwards — the classic dead-path elimination that
//!    makes sync edges from skippable sources deadlock-free;
//! 3. auto-completes silent nodes (splits, joins, null tasks), evaluating
//!    XOR guards and loop conditions, resetting loop bodies on iteration.

use crate::datactx::DataContext;
use crate::error::RuntimeError;
use crate::history::{Event, ExecutionHistory};
use crate::marking::{EdgeState, Marking, NodeState};
use crate::replay::ReplayScript;
use adept_model::blocks::BlockError;
use adept_model::{Blocks, DataId, EdgeKind, LoopCond, NodeId, NodeKind, ProcessSchema, Value};
use serde::{Deserialize, Serialize};
use std::borrow::Cow;

/// The complete runtime state of one process instance.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct InstanceState {
    /// Node and edge marking.
    pub marking: Marking,
    /// Execution history (events in execution order).
    pub history: ExecutionHistory,
    /// Data context (current values + write log).
    pub data: DataContext,
}

impl InstanceState {
    /// Approximate deep size in bytes (for the Fig. 2 experiments).
    pub fn approx_size(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.marking.approx_size()
            + self.history.approx_size()
            + self.data.approx_size()
    }
}

/// A decision the runtime is waiting for (externally decided XOR splits and
/// loop ends).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decision {
    /// An XOR split with unguarded branches awaits a branch choice.
    Xor {
        /// The split node.
        split: NodeId,
        /// Possible branch targets (the `to` node of each outgoing edge).
        targets: Vec<NodeId>,
    },
    /// A loop end with an external condition awaits an iterate/exit choice.
    Loop {
        /// The loop end node.
        loop_end: NodeId,
        /// Completed iterations so far.
        completed: u32,
    },
}

/// Resolves decisions and produces activity output values when an instance
/// is driven automatically (simulation, tests, benchmarks).
pub trait Driver {
    /// Chooses among `targets` at an externally-decided XOR split; returns
    /// an index into `targets`.
    fn choose_branch(&mut self, schema: &ProcessSchema, split: NodeId, targets: &[NodeId])
        -> usize;

    /// Decides whether an externally-decided loop should iterate again.
    fn decide_loop(&mut self, schema: &ProcessSchema, loop_end: NodeId, completed: u32) -> bool;

    /// Chooses which of the currently enabled activities to execute next;
    /// returns an index into `enabled`.
    fn choose_activity(&mut self, schema: &ProcessSchema, enabled: &[NodeId]) -> usize {
        let _ = (schema, enabled);
        0
    }

    /// Produces the value an activity writes for a declared output.
    fn output_value(&mut self, schema: &ProcessSchema, node: NodeId, data: DataId) -> Value;
}

/// One observable step of an automatic run ([`Execution::run_observed`]):
/// the state transitions a driver performed, in execution order. The
/// engine turns these into monitor events, so a driven run produces the
/// same gap-free event stream as manually submitted commands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunEvent {
    /// An activity was started.
    Started(NodeId),
    /// An activity completed.
    Completed(NodeId),
    /// An externally-decided XOR split was resolved to `target`.
    XorDecided {
        /// The split node.
        split: NodeId,
        /// The chosen branch target.
        target: NodeId,
    },
    /// An externally-decided loop end was resolved.
    LoopDecided {
        /// The loop end node.
        loop_end: NodeId,
        /// Whether the loop iterates again.
        iterate: bool,
    },
}

/// The activities in `after` that are missing from `before`. Both slices
/// must be sorted by node id, as [`Execution::enabled`] produces them —
/// the enabled-delta a command outcome reports.
pub fn enabled_diff(before: &[NodeId], after: &[NodeId]) -> Vec<NodeId> {
    let mut out = Vec::new();
    let mut b = before.iter().peekable();
    for &n in after {
        while b.peek().is_some_and(|&&x| x < n) {
            b.next();
        }
        if b.peek() != Some(&&n) {
            out.push(n);
        }
    }
    out
}

/// A deterministic driver: first branch, never iterate externally-decided
/// loops, writes type-default values (`0`, `false`, `""`, `0.0`).
#[derive(Debug, Default, Clone)]
pub struct DefaultDriver;

impl Driver for DefaultDriver {
    fn choose_branch(&mut self, _: &ProcessSchema, _: NodeId, _: &[NodeId]) -> usize {
        0
    }

    fn decide_loop(&mut self, _: &ProcessSchema, _: NodeId, _: u32) -> bool {
        false
    }

    fn output_value(&mut self, schema: &ProcessSchema, _: NodeId, data: DataId) -> Value {
        match schema.data_element(data).map(|d| d.ty) {
            Ok(adept_model::ValueType::Bool) => Value::Bool(false),
            Ok(adept_model::ValueType::Int) => Value::Int(0),
            Ok(adept_model::ValueType::Float) => Value::Float(0.0),
            Ok(adept_model::ValueType::Str) => Value::Str(String::new()),
            Err(_) => Value::Null,
        }
    }
}

/// The interpreter for one schema. Cheap to construct; typically cached per
/// schema by the engine/storage layers. The block structure is either
/// owned (computed here) or borrowed from a shared cache
/// ([`Execution::with_blocks_ref`]), so constructing an interpreter from a
/// deployment or the engine's context cache allocates nothing.
#[derive(Debug, Clone)]
pub struct Execution<'s> {
    /// The schema being executed.
    pub schema: &'s ProcessSchema,
    /// Its block structure (computed once; possibly shared).
    pub blocks: Cow<'s, Blocks>,
}

impl<'s> Execution<'s> {
    /// Creates an interpreter, analysing the block structure.
    pub fn new(schema: &'s ProcessSchema) -> Result<Self, BlockError> {
        Ok(Self {
            schema,
            blocks: Cow::Owned(Blocks::analyze(schema)?),
        })
    }

    /// Creates an interpreter from a pre-computed block analysis.
    pub fn with_blocks(schema: &'s ProcessSchema, blocks: Blocks) -> Self {
        Self {
            schema,
            blocks: Cow::Owned(blocks),
        }
    }

    /// Creates an interpreter borrowing a cached block analysis — the
    /// zero-copy constructor the engine's per-instance context cache and
    /// the deployment registry use on every command.
    pub fn with_blocks_ref(schema: &'s ProcessSchema, blocks: &'s Blocks) -> Self {
        Self {
            schema,
            blocks: Cow::Borrowed(blocks),
        }
    }

    /// Creates a fresh instance state: the start node completes
    /// immediately and activation propagates into the schema.
    pub fn init(&self) -> Result<InstanceState, RuntimeError> {
        let mut st = InstanceState::default();
        let start = self.schema.start_node();
        st.marking.set_node(start, NodeState::Completed);
        self.signal_outgoing(&mut st, start, EdgeState::TrueSignaled)?;
        self.propagate(&mut st)?;
        Ok(st)
    }

    /// Currently enabled (activated) activities, in id order.
    pub fn enabled(&self, st: &InstanceState) -> Vec<NodeId> {
        st.marking
            .nodes_in(NodeState::Activated)
            .filter(|n| {
                self.schema
                    .node(*n)
                    .map(|x| x.kind == NodeKind::Activity)
                    .unwrap_or(false)
            })
            .collect()
    }

    /// Decisions the runtime is currently waiting for.
    pub fn pending_decisions(&self, st: &InstanceState) -> Vec<Decision> {
        let mut out = Vec::new();
        for n in st.marking.nodes_in(NodeState::Activated) {
            let Ok(node) = self.schema.node(n) else {
                continue;
            };
            match node.kind {
                NodeKind::XorSplit if !self.has_guards(n) => {
                    let targets = self
                        .schema
                        .out_edges_kind(n, EdgeKind::Control)
                        .map(|e| e.to)
                        .collect();
                    out.push(Decision::Xor { split: n, targets });
                }
                NodeKind::LoopEnd if self.loop_cond(n) == Some(&LoopCond::External) => {
                    out.push(Decision::Loop {
                        loop_end: n,
                        completed: st.marking.loop_count(n),
                    });
                }
                _ => {}
            }
        }
        out
    }

    /// Whether the instance has reached its end node.
    pub fn is_finished(&self, st: &InstanceState) -> bool {
        st.marking.node(self.schema.end_node()) == NodeState::Completed
    }

    /// Starts an activated activity: checks mandatory inputs, marks it
    /// `Running` and records the event.
    pub fn start_activity(&self, st: &mut InstanceState, n: NodeId) -> Result<(), RuntimeError> {
        let node = self.schema.node(n)?;
        if node.kind != NodeKind::Activity {
            return Err(RuntimeError::NotAnActivity(n));
        }
        if st.marking.node(n) != NodeState::Activated {
            return Err(RuntimeError::NotActivatable(n));
        }
        for de in self.schema.reads_of(n) {
            if !de.optional && !st.data.is_written(de.data) {
                return Err(RuntimeError::MissingInput {
                    node: n,
                    data: de.data,
                });
            }
        }
        st.marking.set_node(n, NodeState::Running);
        let reads = self.read_signature(n);
        st.history.record(Event::Started { node: n, reads });
        Ok(())
    }

    /// Fails a running activity: the node drops back to `Activated` and its
    /// `Started` record is withdrawn, as if the start never happened.
    ///
    /// Starting an activity signals no edges and writes no data, so undoing
    /// it is exactly the inverse pair of [`Execution::start_activity`]'s two
    /// mutations — [`Execution::replay`] and [`Execution::audit`] see a
    /// history with the failed attempt erased and stay consistent.
    pub fn fail_activity(&self, st: &mut InstanceState, n: NodeId) -> Result<(), RuntimeError> {
        let node = self.schema.node(n)?;
        if node.kind != NodeKind::Activity {
            return Err(RuntimeError::NotAnActivity(n));
        }
        if st.marking.node(n) != NodeState::Running {
            return Err(RuntimeError::NotRunning(n));
        }
        st.marking.set_node(n, NodeState::Activated);
        if let Some(i) = st
            .history
            .events
            .iter()
            .rposition(|e| matches!(e, Event::Started { node, .. } if *node == n))
        {
            st.history.events.remove(i);
        }
        Ok(())
    }

    /// Completes a running activity with the given output writes. Every
    /// declared write edge must be supplied exactly once and no undeclared
    /// writes are accepted.
    pub fn complete_activity(
        &self,
        st: &mut InstanceState,
        n: NodeId,
        writes: Vec<(DataId, Value)>,
    ) -> Result<(), RuntimeError> {
        self.complete_activity_scripted(st, n, writes, &mut ReplayScript::empty())
    }

    /// [`Execution::complete_activity`] with a replay script supplying
    /// recorded decisions (used by [`Execution::replay`]).
    pub(crate) fn complete_activity_scripted(
        &self,
        st: &mut InstanceState,
        n: NodeId,
        writes: Vec<(DataId, Value)>,
        script: &mut ReplayScript,
    ) -> Result<(), RuntimeError> {
        if st.marking.node(n) != NodeState::Running {
            return Err(RuntimeError::NotRunning(n));
        }
        let declared: Vec<DataId> = self.schema.writes_of(n).map(|de| de.data).collect();
        for (d, _) in &writes {
            if !declared.contains(d) {
                return Err(RuntimeError::UndeclaredWrite { node: n, data: *d });
            }
        }
        for d in &declared {
            if !writes.iter().any(|(x, _)| x == d) {
                return Err(RuntimeError::MissingOutput { node: n, data: *d });
            }
        }
        // Validate every write before applying any: callers mutate instance
        // state in place, so a mid-loop type error must not leave a
        // half-written data context behind. Shares DataContext::write's
        // own check, so the two cannot drift apart.
        for (d, v) in &writes {
            DataContext::validate_write(self.schema, *d, v)?;
        }
        for (d, v) in &writes {
            st.data.write(self.schema, n, *d, v.clone())?;
        }
        st.marking.set_node(n, NodeState::Completed);
        st.history.record(Event::Completed { node: n, writes });
        self.signal_outgoing(st, n, EdgeState::TrueSignaled)?;
        self.propagate_with(st, script)
    }

    /// Resolves a pending XOR decision by branch target.
    pub fn decide_xor(
        &self,
        st: &mut InstanceState,
        split: NodeId,
        branch_target: NodeId,
    ) -> Result<(), RuntimeError> {
        let node = self.schema.node(split)?;
        if node.kind != NodeKind::XorSplit || st.marking.node(split) != NodeState::Activated {
            return Err(RuntimeError::NoDecisionPending(split));
        }
        let chosen = self
            .schema
            .out_edges_kind(split, EdgeKind::Control)
            .find(|e| e.to == branch_target)
            .map(|e| e.id)
            .ok_or(RuntimeError::BranchNotFound {
                split,
                target: branch_target,
            })?;
        self.fire_xor(st, split, chosen)?;
        self.propagate(st)
    }

    /// Resolves a pending loop decision.
    pub fn decide_loop(
        &self,
        st: &mut InstanceState,
        loop_end: NodeId,
        iterate: bool,
    ) -> Result<(), RuntimeError> {
        let node = self.schema.node(loop_end)?;
        if node.kind != NodeKind::LoopEnd || st.marking.node(loop_end) != NodeState::Activated {
            return Err(RuntimeError::NoDecisionPending(loop_end));
        }
        self.fire_loop_end(st, loop_end, iterate)?;
        self.propagate(st)
    }

    /// Drives the instance forward with `driver`, completing at most
    /// `max_activities` activities (`None` = until the instance finishes).
    /// Returns the number of activities completed.
    pub fn run(
        &self,
        st: &mut InstanceState,
        driver: &mut dyn Driver,
        max_activities: Option<usize>,
    ) -> Result<usize, RuntimeError> {
        self.run_observed(st, driver, max_activities, &mut |_| {})
    }

    /// [`Execution::run`] reporting every state transition it performs —
    /// activity starts/completions and externally resolved decisions — to
    /// `observe`, in execution order. Automatic transitions (guard-driven
    /// XOR splits, counted/guarded loops, silent nodes) stay silent; they
    /// are schema semantics, not driver actions.
    pub fn run_observed(
        &self,
        st: &mut InstanceState,
        driver: &mut dyn Driver,
        max_activities: Option<usize>,
        observe: &mut dyn FnMut(RunEvent),
    ) -> Result<usize, RuntimeError> {
        let mut completed = 0usize;
        let mut stall_guard = 0usize;
        loop {
            if let Some(max) = max_activities {
                if completed >= max {
                    return Ok(completed);
                }
            }
            if self.is_finished(st) {
                return Ok(completed);
            }
            let decisions = self.pending_decisions(st);
            if !decisions.is_empty() {
                for d in decisions {
                    match d {
                        Decision::Xor { split, targets } => {
                            let idx = driver.choose_branch(self.schema, split, &targets);
                            let target = *targets.get(idx).ok_or(RuntimeError::BranchNotFound {
                                split,
                                target: split,
                            })?;
                            self.decide_xor(st, split, target)?;
                            observe(RunEvent::XorDecided { split, target });
                        }
                        Decision::Loop {
                            loop_end,
                            completed: iters,
                        } => {
                            let it = driver.decide_loop(self.schema, loop_end, iters);
                            self.decide_loop(st, loop_end, it)?;
                            observe(RunEvent::LoopDecided {
                                loop_end,
                                iterate: it,
                            });
                        }
                    }
                }
                continue;
            }
            let enabled = self.enabled(st);
            if enabled.is_empty() {
                // Neither enabled work, nor decisions, nor completion:
                // an activity may be mid-flight (Running) — complete it —
                // otherwise the instance is stuck (which the verifier rules
                // out for correct schemas).
                let running: Vec<NodeId> = st.marking.nodes_in(NodeState::Running).collect();
                if running.is_empty() {
                    return Err(RuntimeError::Stuck);
                }
                for n in running {
                    let writes = self.collect_outputs(st, n, driver);
                    self.complete_activity(st, n, writes)?;
                    observe(RunEvent::Completed(n));
                    completed += 1;
                }
                continue;
            }
            let idx = driver.choose_activity(self.schema, &enabled);
            let n = enabled[idx.min(enabled.len() - 1)];
            self.start_activity(st, n)?;
            observe(RunEvent::Started(n));
            let writes = self.collect_outputs(st, n, driver);
            self.complete_activity(st, n, writes)?;
            observe(RunEvent::Completed(n));
            completed += 1;
            stall_guard += 1;
            if stall_guard > 1_000_000 {
                return Err(RuntimeError::StepLimitExceeded);
            }
        }
    }

    fn collect_outputs(
        &self,
        _st: &InstanceState,
        n: NodeId,
        driver: &mut dyn Driver,
    ) -> Vec<(DataId, Value)> {
        self.schema
            .writes_of(n)
            .map(|de| de.data)
            .collect::<Vec<_>>()
            .into_iter()
            .map(|d| (d, driver.output_value(self.schema, n, d)))
            .collect()
    }

    // ------------------------------------------------------------------
    // Core semantics
    // ------------------------------------------------------------------

    /// The sorted mandatory read parameters of an activity (its read
    /// signature, recorded in `Started` events).
    pub fn read_signature(&self, n: NodeId) -> Vec<DataId> {
        let mut reads: Vec<DataId> = self
            .schema
            .reads_of(n)
            .filter(|de| !de.optional)
            .map(|de| de.data)
            .collect();
        reads.sort_unstable();
        reads
    }

    /// Re-runs the activation fixpoint. Public for the change/migration
    /// layer, which adapts markings externally (state adaptation) and then
    /// lets the regular semantics settle activations, auto-completions and
    /// dead paths.
    pub fn refresh(&self, st: &mut InstanceState) -> Result<(), RuntimeError> {
        self.propagate(st)
    }

    /// Matches a recorded branch target against the current schema's
    /// branches of `split`: directly by edge target, or — when a change
    /// inserted nodes at the branch head — by branch-region containment.
    fn match_branch(
        &self,
        split: NodeId,
        target: NodeId,
    ) -> Result<adept_model::EdgeId, RuntimeError> {
        let edges: Vec<&adept_model::Edge> = self
            .schema
            .out_edges_kind(split, EdgeKind::Control)
            .collect();
        if let Some(e) = edges.iter().find(|e| e.to == target) {
            return Ok(e.id);
        }
        if let Some(info) = self.blocks.by_split.get(&split) {
            for (i, e) in edges.iter().enumerate() {
                if info
                    .branches
                    .get(i)
                    .is_some_and(|region| region.contains(&target))
                {
                    return Ok(e.id);
                }
            }
        }
        Err(RuntimeError::BranchNotFound { split, target })
    }

    fn has_guards(&self, split: NodeId) -> bool {
        self.schema
            .out_edges_kind(split, EdgeKind::Control)
            .any(|e| e.guard.is_some())
    }

    fn loop_cond(&self, loop_end: NodeId) -> Option<&LoopCond> {
        self.schema
            .out_edges_kind(loop_end, EdgeKind::Loop)
            .next()
            .and_then(|e| e.loop_cond.as_ref())
    }

    /// Signals all outgoing control and sync edges of `n` with `state`.
    fn signal_outgoing(
        &self,
        st: &mut InstanceState,
        n: NodeId,
        state: EdgeState,
    ) -> Result<(), RuntimeError> {
        let ids: Vec<_> = self
            .schema
            .out_edges(n)
            .filter(|e| e.kind != EdgeKind::Loop)
            .map(|e| e.id)
            .collect();
        for e in ids {
            st.marking.set_edge(e, state);
        }
        Ok(())
    }

    /// The activation fixpoint with an empty replay script.
    pub(crate) fn propagate(&self, st: &mut InstanceState) -> Result<(), RuntimeError> {
        self.propagate_with(st, &mut ReplayScript::empty())
    }

    /// The activation fixpoint described in the module docs. Recorded
    /// decisions in `script` take precedence over guard/loop-condition
    /// evaluation, which is what makes reduced-history replay faithful.
    pub(crate) fn propagate_with(
        &self,
        st: &mut InstanceState,
        script: &mut ReplayScript,
    ) -> Result<(), RuntimeError> {
        loop {
            let mut progressed = false;

            // Phase 1: activate / skip nodes.
            let candidates: Vec<NodeId> = self
                .schema
                .node_ids()
                .filter(|n| st.marking.node(*n) == NodeState::NotActivated)
                .collect();
            for n in candidates {
                match self.evaluate_incoming(st, n) {
                    Readiness::Ready => {
                        st.marking.set_node(n, NodeState::Activated);
                        progressed = true;
                    }
                    Readiness::Dead => {
                        st.marking.set_node(n, NodeState::Skipped);
                        self.signal_outgoing(st, n, EdgeState::FalseSignaled)?;
                        progressed = true;
                    }
                    Readiness::Wait => {}
                }
            }

            // Phase 2: auto-complete silent activated nodes.
            let silent: Vec<NodeId> = st
                .marking
                .nodes_in(NodeState::Activated)
                .filter(|n| {
                    self.schema
                        .node(*n)
                        .map(|x| x.kind.is_silent())
                        .unwrap_or(false)
                })
                .collect();
            for n in silent {
                if st.marking.node(n) != NodeState::Activated {
                    continue; // a loop reset in this sweep may have cleared it
                }
                let kind = self.schema.node(n)?.kind;
                match kind {
                    NodeKind::XorSplit => {
                        if let Some(target) = script.pop_xor(n) {
                            let chosen = self.match_branch(n, target)?;
                            self.fire_xor(st, n, chosen)?;
                            progressed = true;
                        } else if self.has_guards(n) {
                            let chosen = self.evaluate_guards(st, n)?;
                            self.fire_xor(st, n, chosen)?;
                            progressed = true;
                        }
                        // else: external decision pending
                    }
                    NodeKind::LoopEnd => {
                        if let Some(iterate) = script.pop_loop(n) {
                            self.fire_loop_end(st, n, iterate)?;
                            progressed = true;
                        } else {
                            match self.loop_cond(n).cloned() {
                                Some(LoopCond::Times(total)) => {
                                    let iterate = st.marking.loop_count(n) + 1 < total;
                                    self.fire_loop_end(st, n, iterate)?;
                                    progressed = true;
                                }
                                Some(LoopCond::While(g)) => {
                                    let iterate = g.eval(st.data.value(g.data));
                                    self.fire_loop_end(st, n, iterate)?;
                                    progressed = true;
                                }
                                Some(LoopCond::External) => {} // pending
                                None => return Err(RuntimeError::LoopNotDecidable(n)),
                            }
                        }
                    }
                    NodeKind::Activity => unreachable!("activities are not silent"),
                    _ => {
                        st.marking.set_node(n, NodeState::Completed);
                        self.signal_outgoing(st, n, EdgeState::TrueSignaled)?;
                        progressed = true;
                    }
                }
            }

            if !progressed {
                return Ok(());
            }
        }
    }

    fn evaluate_guards(
        &self,
        st: &InstanceState,
        split: NodeId,
    ) -> Result<adept_model::EdgeId, RuntimeError> {
        let mut else_edge = None;
        for e in self.schema.out_edges_kind(split, EdgeKind::Control) {
            match &e.guard {
                Some(g) => {
                    if g.eval(st.data.value(g.data)) {
                        return Ok(e.id);
                    }
                }
                None => else_edge = Some(e.id),
            }
        }
        else_edge.ok_or(RuntimeError::NoBranchMatches(split))
    }

    fn fire_xor(
        &self,
        st: &mut InstanceState,
        split: NodeId,
        chosen: adept_model::EdgeId,
    ) -> Result<(), RuntimeError> {
        let target = self.schema.edge(chosen)?.to;
        st.history.record(Event::XorChosen {
            split,
            branch_target: target,
        });
        st.marking.set_node(split, NodeState::Completed);
        let ids: Vec<(adept_model::EdgeId, EdgeState)> = self
            .schema
            .out_edges(split)
            .filter(|e| e.kind != EdgeKind::Loop)
            .map(|e| {
                // Sync edges signal true regardless: the split itself completed.
                let s = if (e.id == chosen && e.kind == EdgeKind::Control)
                    || e.kind == EdgeKind::Sync
                {
                    EdgeState::TrueSignaled
                } else {
                    EdgeState::FalseSignaled
                };
                (e.id, s)
            })
            .collect();
        for (e, s) in ids {
            st.marking.set_edge(e, s);
        }
        Ok(())
    }

    fn fire_loop_end(
        &self,
        st: &mut InstanceState,
        loop_end: NodeId,
        iterate: bool,
    ) -> Result<(), RuntimeError> {
        st.history.record(Event::LoopDecided { loop_end, iterate });
        st.marking.bump_loop(loop_end);
        if iterate {
            let loop_start = self
                .schema
                .out_edges_kind(loop_end, EdgeKind::Loop)
                .next()
                .map(|e| e.to)
                .ok_or(RuntimeError::LoopNotDecidable(loop_end))?;
            st.history.record(Event::LoopReset { loop_start });
            self.reset_loop_body(st, loop_start, loop_end);
        } else {
            st.marking.set_node(loop_end, NodeState::Completed);
            self.signal_outgoing(st, loop_end, EdgeState::TrueSignaled)?;
        }
        Ok(())
    }

    /// Resets the loop body for the next iteration: body nodes (including
    /// the loop start/end) return to `NotActivated`, intra-body edges to
    /// `NotSignaled`, and nested loop counters are cleared. The control
    /// edge entering the loop start stays `TrueSignaled`, so the next
    /// propagation sweep re-activates the body.
    fn reset_loop_body(&self, st: &mut InstanceState, loop_start: NodeId, loop_end: NodeId) {
        let Some(info) = self.blocks.by_split.get(&loop_start) else {
            return;
        };
        let mut body = info.interior();
        body.insert(loop_start);
        body.insert(loop_end);
        for &n in &body {
            st.marking.set_node(n, NodeState::NotActivated);
            if n != loop_end {
                st.marking.clear_loop(n); // nested loop counters restart
            }
        }
        let edge_ids: Vec<adept_model::EdgeId> = self
            .schema
            .edges()
            .filter(|e| body.contains(&e.from) && body.contains(&e.to))
            .map(|e| e.id)
            .collect();
        for e in edge_ids {
            st.marking.set_edge(e, EdgeState::NotSignaled);
        }
    }

    fn evaluate_incoming(&self, st: &InstanceState, n: NodeId) -> Readiness {
        let Ok(node) = self.schema.node(n) else {
            return Readiness::Wait;
        };
        let mut control_total = 0usize;
        let mut control_true = 0usize;
        let mut control_false = 0usize;
        let mut sync_unsignaled = false;
        for e in self.schema.in_edges(n) {
            match e.kind {
                EdgeKind::Control => {
                    control_total += 1;
                    match st.marking.edge(e.id) {
                        EdgeState::TrueSignaled => control_true += 1,
                        EdgeState::FalseSignaled => control_false += 1,
                        EdgeState::NotSignaled => {}
                    }
                }
                EdgeKind::Sync => {
                    if !st.marking.edge(e.id).signaled() {
                        sync_unsignaled = true;
                    }
                }
                EdgeKind::Loop => {} // handled by explicit body resets
            }
        }
        if control_total == 0 {
            // Only the start node has no incoming control edges; it is
            // completed explicitly by `init` and never (re-)activated here.
            return Readiness::Wait;
        }
        let control_ready = if node.kind == NodeKind::XorJoin {
            if control_true >= 1 {
                ControlStatus::Ready
            } else if control_false == control_total {
                ControlStatus::Dead
            } else {
                ControlStatus::Wait
            }
        } else if control_false > 0 {
            ControlStatus::Dead
        } else if control_true == control_total {
            ControlStatus::Ready
        } else {
            ControlStatus::Wait
        };
        match control_ready {
            ControlStatus::Dead => Readiness::Dead,
            ControlStatus::Wait => Readiness::Wait,
            ControlStatus::Ready => {
                if sync_unsignaled {
                    Readiness::Wait
                } else {
                    Readiness::Ready
                }
            }
        }
    }
}

enum ControlStatus {
    Ready,
    Dead,
    Wait,
}

enum Readiness {
    Ready,
    Dead,
    Wait,
}

#[cfg(test)]
mod tests {
    use super::*;
    use adept_model::{CmpOp, Guard, SchemaBuilder, ValueType};

    fn exec(schema: &ProcessSchema) -> Execution<'_> {
        Execution::new(schema).expect("block analysis")
    }

    #[test]
    fn sequence_executes_in_order() {
        let mut b = SchemaBuilder::new("seq");
        let a = b.activity("a");
        let c = b.activity("c");
        let s = b.build().unwrap();
        let ex = exec(&s);
        let mut st = ex.init().unwrap();
        assert_eq!(ex.enabled(&st), vec![a]);
        ex.start_activity(&mut st, a).unwrap();
        assert_eq!(st.marking.node(a), NodeState::Running);
        ex.complete_activity(&mut st, a, vec![]).unwrap();
        assert_eq!(ex.enabled(&st), vec![c]);
        ex.start_activity(&mut st, c).unwrap();
        ex.complete_activity(&mut st, c, vec![]).unwrap();
        assert!(ex.is_finished(&st));
    }

    #[test]
    fn cannot_start_unactivated_activity() {
        let mut b = SchemaBuilder::new("seq");
        b.activity("a");
        let c = b.activity("c");
        let s = b.build().unwrap();
        let ex = exec(&s);
        let mut st = ex.init().unwrap();
        assert!(matches!(
            ex.start_activity(&mut st, c),
            Err(RuntimeError::NotActivatable(_))
        ));
    }

    #[test]
    fn parallel_branches_run_concurrently() {
        let mut b = SchemaBuilder::new("par");
        b.and_split();
        b.branch();
        let x = b.activity("x");
        b.branch();
        let y = b.activity("y");
        b.and_join();
        let z = b.activity("z");
        let s = b.build().unwrap();
        let ex = exec(&s);
        let mut st = ex.init().unwrap();
        assert_eq!(ex.enabled(&st), vec![x, y]);
        ex.start_activity(&mut st, y).unwrap();
        ex.start_activity(&mut st, x).unwrap();
        ex.complete_activity(&mut st, x, vec![]).unwrap();
        // Join must wait for y.
        assert!(ex.enabled(&st).is_empty());
        ex.complete_activity(&mut st, y, vec![]).unwrap();
        assert_eq!(ex.enabled(&st), vec![z]);
    }

    #[test]
    fn xor_guard_selects_branch_and_skips_other() {
        let mut b = SchemaBuilder::new("xor");
        let d = b.data("amount", ValueType::Int);
        let w = b.activity("w");
        b.write(w, d);
        b.xor_split();
        b.case_when(Guard::new(d, CmpOp::Ge, Value::Int(100)));
        let big = b.activity("big");
        b.case();
        let small = b.activity("small");
        b.xor_join();
        let s = b.build().unwrap();
        let ex = exec(&s);
        let mut st = ex.init().unwrap();
        ex.start_activity(&mut st, w).unwrap();
        ex.complete_activity(&mut st, w, vec![(d, Value::Int(500))])
            .unwrap();
        assert_eq!(ex.enabled(&st), vec![big]);
        assert_eq!(st.marking.node(small), NodeState::Skipped);
        ex.start_activity(&mut st, big).unwrap();
        ex.complete_activity(&mut st, big, vec![]).unwrap();
        assert!(ex.is_finished(&st));
    }

    #[test]
    fn xor_else_branch_taken_when_guards_false() {
        let mut b = SchemaBuilder::new("xor");
        let d = b.data("amount", ValueType::Int);
        let w = b.activity("w");
        b.write(w, d);
        b.xor_split();
        b.case_when(Guard::new(d, CmpOp::Ge, Value::Int(100)));
        let big = b.activity("big");
        b.case();
        let small = b.activity("small");
        b.xor_join();
        let s = b.build().unwrap();
        let ex = exec(&s);
        let mut st = ex.init().unwrap();
        ex.start_activity(&mut st, w).unwrap();
        ex.complete_activity(&mut st, w, vec![(d, Value::Int(5))])
            .unwrap();
        assert_eq!(ex.enabled(&st), vec![small]);
        assert_eq!(st.marking.node(big), NodeState::Skipped);
    }

    #[test]
    fn external_xor_waits_for_decision() {
        let mut b = SchemaBuilder::new("xor");
        b.xor_split();
        b.case();
        let x = b.activity("x");
        b.case();
        b.activity("y");
        b.xor_join();
        let s = b.build().unwrap();
        let ex = exec(&s);
        let mut st = ex.init().unwrap();
        assert!(ex.enabled(&st).is_empty());
        let decisions = ex.pending_decisions(&st);
        assert_eq!(decisions.len(), 1);
        let Decision::Xor { split, targets } = &decisions[0] else {
            panic!("expected XOR decision");
        };
        assert_eq!(targets.len(), 2);
        ex.decide_xor(&mut st, *split, x).unwrap();
        assert_eq!(ex.enabled(&st), vec![x]);
    }

    #[test]
    fn times_loop_runs_body_n_times() {
        let mut b = SchemaBuilder::new("loop");
        b.loop_start();
        let body = b.activity("body");
        b.loop_end(LoopCond::Times(3));
        let s = b.build().unwrap();
        let ex = exec(&s);
        let mut st = ex.init().unwrap();
        let mut driver = DefaultDriver;
        let n = ex.run(&mut st, &mut driver, None).unwrap();
        assert_eq!(n, 3, "body must execute exactly 3 times");
        assert!(ex.is_finished(&st));
        let starts = st
            .history
            .events
            .iter()
            .filter(|e| matches!(e, Event::Started { node, .. } if *node == body))
            .count();
        assert_eq!(starts, 3);
    }

    #[test]
    fn while_loop_exits_on_guard() {
        let mut b = SchemaBuilder::new("while");
        let d = b.data("go", ValueType::Bool);
        let init = b.activity("init");
        b.write(init, d);
        b.loop_start();
        let body = b.activity("body");
        b.write(body, d);
        b.loop_end(LoopCond::While(Guard::new(d, CmpOp::Eq, Value::Bool(true))));
        let s = b.build().unwrap();
        let ex = exec(&s);
        let mut st = ex.init().unwrap();

        // Driver writes `true` twice then `false`: body executes 3 times.
        struct CountingDriver(u32);
        impl Driver for CountingDriver {
            fn choose_branch(&mut self, _: &ProcessSchema, _: NodeId, _: &[NodeId]) -> usize {
                0
            }
            fn decide_loop(&mut self, _: &ProcessSchema, _: NodeId, _: u32) -> bool {
                false
            }
            fn output_value(&mut self, _: &ProcessSchema, _: NodeId, _: DataId) -> Value {
                self.0 += 1;
                Value::Bool(self.0 < 4) // init + 2 body writes true, then false
            }
        }
        let mut driver = CountingDriver(0);
        ex.run(&mut st, &mut driver, None).unwrap();
        assert!(ex.is_finished(&st));
        let body_runs = st
            .history
            .events
            .iter()
            .filter(|e| matches!(e, Event::Started { node, .. } if *node == body))
            .count();
        assert_eq!(body_runs, 3);
    }

    #[test]
    fn loop_reset_reduces_history() {
        let mut b = SchemaBuilder::new("loop");
        b.loop_start();
        b.activity("body");
        b.loop_end(LoopCond::Times(2));
        let s = b.build().unwrap();
        let ex = exec(&s);
        let mut st = ex.init().unwrap();
        ex.run(&mut st, &mut DefaultDriver, None).unwrap();
        let reduced = st.history.reduced(&s, &ex.blocks);
        let starts = reduced
            .events
            .iter()
            .filter(|e| matches!(e, Event::Started { .. }))
            .count();
        assert_eq!(starts, 1, "reduced history keeps only the last iteration");
    }

    #[test]
    fn sync_edge_blocks_target_until_source_completes() {
        let mut b = SchemaBuilder::new("sync");
        b.and_split();
        b.branch();
        let producer = b.activity("producer");
        b.branch();
        let consumer = b.activity("consumer");
        b.and_join();
        b.sync(producer, consumer);
        let s = b.build().unwrap();
        let ex = exec(&s);
        let mut st = ex.init().unwrap();
        assert_eq!(ex.enabled(&st), vec![producer], "consumer must wait");
        ex.start_activity(&mut st, producer).unwrap();
        ex.complete_activity(&mut st, producer, vec![]).unwrap();
        assert_eq!(ex.enabled(&st), vec![consumer]);
    }

    #[test]
    fn sync_from_skipped_source_releases_target() {
        // producer inside an XOR branch that is NOT taken: the sync edge
        // fires FalseSignaled and the consumer may proceed (dead-path
        // elimination prevents the deadlock).
        let mut b = SchemaBuilder::new("sync-skip");
        let d = b.data("flag", ValueType::Bool);
        let w = b.activity("w");
        b.write(w, d);
        b.and_split();
        b.branch();
        b.xor_split();
        b.case_when(Guard::new(d, CmpOp::Eq, Value::Bool(true)));
        let producer = b.activity("producer");
        b.case();
        let other = b.activity("other");
        b.xor_join();
        b.branch();
        let consumer = b.activity("consumer");
        b.and_join();
        b.sync(producer, consumer);
        let s = b.build().unwrap();
        let ex = exec(&s);
        let mut st = ex.init().unwrap();
        ex.start_activity(&mut st, w).unwrap();
        ex.complete_activity(&mut st, w, vec![(d, Value::Bool(false))])
            .unwrap();
        // producer is skipped; consumer must be enabled.
        assert_eq!(st.marking.node(producer), NodeState::Skipped);
        let enabled = ex.enabled(&st);
        assert!(enabled.contains(&consumer), "enabled: {enabled:?}");
        assert!(enabled.contains(&other));
    }

    #[test]
    fn missing_mandatory_input_blocks_start() {
        let mut b = SchemaBuilder::new("missing");
        let d = b.data("x", ValueType::Int);
        let w = b.activity("w");
        b.write(w, d);
        let r = b.activity("r");
        b.read(r, d);
        let s = b.build().unwrap();
        let ex = exec(&s);
        let mut st = ex.init().unwrap();
        // Complete w but (illegally at the model level) pretend it wrote
        // nothing by building a context bypass: complete with declared
        // writes as required — so instead test the read check directly by
        // deleting the value: simpler — start r before w has run is
        // impossible; so test MissingOutput instead.
        ex.start_activity(&mut st, w).unwrap();
        let err = ex.complete_activity(&mut st, w, vec![]).unwrap_err();
        assert!(matches!(err, RuntimeError::MissingOutput { .. }));
    }

    #[test]
    fn undeclared_write_rejected() {
        let mut b = SchemaBuilder::new("undeclared");
        let d = b.data("x", ValueType::Int);
        let a = b.activity("a");
        let _ = d;
        let s = b.build().unwrap();
        let ex = exec(&s);
        let mut st = ex.init().unwrap();
        ex.start_activity(&mut st, a).unwrap();
        let err = ex
            .complete_activity(&mut st, a, vec![(d, Value::Int(1))])
            .unwrap_err();
        assert!(matches!(err, RuntimeError::UndeclaredWrite { .. }));
    }

    #[test]
    fn run_with_limit_stops_midway() {
        let mut b = SchemaBuilder::new("limit");
        b.activity("a");
        b.activity("b");
        b.activity("c");
        let s = b.build().unwrap();
        let ex = exec(&s);
        let mut st = ex.init().unwrap();
        let n = ex.run(&mut st, &mut DefaultDriver, Some(2)).unwrap();
        assert_eq!(n, 2);
        assert!(!ex.is_finished(&st));
        let n2 = ex.run(&mut st, &mut DefaultDriver, None).unwrap();
        assert_eq!(n2, 1);
        assert!(ex.is_finished(&st));
    }

    #[test]
    fn nested_loop_counters_reset() {
        let mut b = SchemaBuilder::new("nested-loop");
        b.loop_start();
        b.loop_start();
        let inner = b.activity("inner");
        b.loop_end(LoopCond::Times(2));
        b.loop_end(LoopCond::Times(3));
        let s = b.build().unwrap();
        let ex = exec(&s);
        let mut st = ex.init().unwrap();
        ex.run(&mut st, &mut DefaultDriver, None).unwrap();
        let inner_runs = st
            .history
            .events
            .iter()
            .filter(|e| matches!(e, Event::Started { node, .. } if *node == inner))
            .count();
        assert_eq!(inner_runs, 6, "2 inner iterations per 3 outer iterations");
    }
}
