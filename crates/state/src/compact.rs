//! Compact execution over compiled schema arenas.
//!
//! [`CompiledExecution`] is the flat-core twin of [`Execution`]: the same
//! ADEPT2 semantics — activation fixpoint, dead-path elimination, silent
//! auto-completion, XOR guards, loop resets — run over a
//! [`CompiledSchema`] arena and a [`CompactMarking`] (small-int state
//! vectors indexed by arena slot) instead of `BTreeMap` lookups per node
//! and edge.
//!
//! The contract is **observational equivalence**: driven through the same
//! commands, the compiled path produces byte-identical [`InstanceState`]s
//! (marking, history, data) and identical errors to the interpreter. The
//! conversion happens at the boundary — public methods accept and mutate
//! the ordinary [`InstanceState`], converting the marking to compact form
//! once per command (once per *run* for [`CompiledExecution::run`]) and
//! re-assembling a minimal marking on the way out, so snapshots, WAL
//! post-images and audits cannot tell the two paths apart.
//!
//! Biased (ad-hoc-changed) instances materialise overlaid schemas the
//! shared arena does not describe; the engine keeps them on the
//! interpreted path (see `adept-engine`'s crate docs).

use crate::datactx::DataContext;
use crate::error::RuntimeError;
use crate::execution::{Decision, Driver, InstanceState, RunEvent};
use crate::history::{Event, ExecutionHistory};
use crate::marking::{EdgeState, Marking, NodeState};
use adept_model::{
    CompiledSchema, DataId, EdgeKind, LoopCond, ModelError, NodeId, NodeKind, ProcessSchema, Value,
};

/// The marking of one instance as dense per-slot vectors, indexed by
/// arena position. Conversion to and from the sparse [`Marking`] is
/// lossless: defaults are dropped on the way out, so a round trip yields
/// an identical (and identically serialised) marking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompactMarking {
    nodes: Vec<NodeState>,
    edges: Vec<EdgeState>,
    loops: Vec<u32>,
}

impl CompactMarking {
    /// A fresh marking for an arena: every node `NotActivated`, every
    /// edge `NotSignaled`, every loop counter zero.
    pub fn fresh(arena: &CompiledSchema) -> Self {
        Self {
            nodes: vec![NodeState::default(); arena.node_count()],
            edges: vec![EdgeState::default(); arena.edge_count()],
            loops: vec![0; arena.node_count()],
        }
    }

    /// Converts a sparse marking. Fails with the offending id when the
    /// marking references a node or edge the arena does not intern — the
    /// signal that this state belongs to a different (e.g. overlaid)
    /// schema and must take the interpreted path.
    pub fn from_marking(arena: &CompiledSchema, m: &Marking) -> Result<Self, RuntimeError> {
        let mut cm = Self::fresh(arena);
        for (n, s) in m.marked_nodes() {
            let slot = arena
                .node_slot(n)
                .ok_or(RuntimeError::Model(ModelError::UnknownNode(n)))?;
            cm.nodes[slot as usize] = s;
        }
        for (e, s) in m.signaled_edges() {
            let slot = arena
                .edge_slot(e)
                .ok_or(RuntimeError::Model(ModelError::UnknownEdge(e)))?;
            cm.edges[slot as usize] = s;
        }
        for (n, c) in m.loop_counters() {
            let slot = arena
                .node_slot(n)
                .ok_or(RuntimeError::Model(ModelError::UnknownNode(n)))?;
            cm.loops[slot as usize] = c;
        }
        Ok(cm)
    }

    /// Re-assembles the minimal sparse marking (defaults omitted), equal —
    /// including serialisation — to what the interpreter would maintain.
    pub fn to_marking(&self, arena: &CompiledSchema) -> Marking {
        let mut m = Marking::new();
        for (slot, &s) in self.nodes.iter().enumerate() {
            if s != NodeState::NotActivated {
                m.set_node(arena.node_id(slot as u32), s);
            }
        }
        for (slot, &s) in self.edges.iter().enumerate() {
            if s != EdgeState::NotSignaled {
                m.set_edge(arena.edge_id(slot as u32), s);
            }
        }
        for (slot, &c) in self.loops.iter().enumerate() {
            if c > 0 {
                m.set_loop_count(arena.node_id(slot as u32), c);
            }
        }
        m
    }

    /// State of a node slot.
    #[inline]
    pub fn node(&self, slot: u32) -> NodeState {
        self.nodes[slot as usize]
    }

    /// Sets a node slot.
    #[inline]
    pub fn set_node(&mut self, slot: u32, s: NodeState) {
        self.nodes[slot as usize] = s;
    }

    /// State of an edge slot.
    #[inline]
    pub fn edge(&self, slot: u32) -> EdgeState {
        self.edges[slot as usize]
    }

    /// Sets an edge slot.
    #[inline]
    pub fn set_edge(&mut self, slot: u32, s: EdgeState) {
        self.edges[slot as usize] = s;
    }

    /// Completed iterations of the loop closed by `slot`.
    #[inline]
    pub fn loop_count(&self, slot: u32) -> u32 {
        self.loops[slot as usize]
    }
}

/// The compiled-path interpreter: [`Execution`]'s semantics over an arena.
///
/// Carries the arena for slot-indexed control flow plus the schema it was
/// compiled from — data writes are validated against the schema's declared
/// element types, and [`Driver`] callbacks receive the schema, exactly as
/// on the interpreted path.
///
/// [`Execution`]: crate::execution::Execution
#[derive(Debug, Clone, Copy)]
pub struct CompiledExecution<'a> {
    /// The schema the arena was compiled from.
    pub schema: &'a ProcessSchema,
    /// The compiled arena.
    pub arena: &'a CompiledSchema,
}

enum Readiness {
    Ready,
    Dead,
    Wait,
}

impl<'a> CompiledExecution<'a> {
    /// Creates a compiled-path interpreter over a schema/arena pair. The
    /// arena must have been compiled from exactly this schema.
    pub fn new(schema: &'a ProcessSchema, arena: &'a CompiledSchema) -> Self {
        Self { schema, arena }
    }

    /// Creates a fresh instance state (see `Execution::init`).
    pub fn init(&self) -> Result<InstanceState, RuntimeError> {
        let mut st = InstanceState::default();
        let mut cm = CompactMarking::fresh(self.arena);
        cm.set_node(self.arena.start, NodeState::Completed);
        self.signal_outgoing(&mut cm, self.arena.start, EdgeState::TrueSignaled);
        let res = self.propagate(&mut cm, &mut st.history, &st.data);
        st.marking = cm.to_marking(self.arena);
        res?;
        Ok(st)
    }

    /// Currently enabled (activated) activities, in id order.
    pub fn enabled(&self, st: &InstanceState) -> Vec<NodeId> {
        st.marking
            .nodes_in(NodeState::Activated)
            .filter(|&n| {
                self.arena
                    .node_slot(n)
                    .is_some_and(|s| self.arena.nodes[s as usize].kind == NodeKind::Activity)
            })
            .collect()
    }

    /// Decisions the runtime is currently waiting for.
    pub fn pending_decisions(&self, st: &InstanceState) -> Vec<Decision> {
        let mut out = Vec::new();
        for n in st.marking.nodes_in(NodeState::Activated) {
            let Some(slot) = self.arena.node_slot(n) else {
                continue;
            };
            let node = &self.arena.nodes[slot as usize];
            match node.kind {
                NodeKind::XorSplit if !node.has_guards => {
                    let targets = node
                        .out_control
                        .iter()
                        .map(|&e| self.arena.node_id(self.arena.edges[e as usize].to))
                        .collect();
                    out.push(Decision::Xor { split: n, targets });
                }
                NodeKind::LoopEnd if node.loop_cond == Some(LoopCond::External) => {
                    out.push(Decision::Loop {
                        loop_end: n,
                        completed: st.marking.loop_count(n),
                    });
                }
                _ => {}
            }
        }
        out
    }

    /// Whether the instance has reached its end node.
    pub fn is_finished(&self, st: &InstanceState) -> bool {
        st.marking.node(self.arena.node_id(self.arena.end)) == NodeState::Completed
    }

    /// The sorted mandatory read signature of an activity (precomputed).
    pub fn read_signature(&self, n: NodeId) -> Vec<DataId> {
        self.arena
            .node_slot(n)
            .map(|s| self.arena.nodes[s as usize].read_signature.to_vec())
            .unwrap_or_default()
    }

    /// Starts an activated activity (see `Execution::start_activity`).
    pub fn start_activity(&self, st: &mut InstanceState, n: NodeId) -> Result<(), RuntimeError> {
        let slot = self
            .arena
            .node_slot(n)
            .ok_or(RuntimeError::Model(ModelError::UnknownNode(n)))?;
        let node = &self.arena.nodes[slot as usize];
        if node.kind != NodeKind::Activity {
            return Err(RuntimeError::NotAnActivity(n));
        }
        if st.marking.node(n) != NodeState::Activated {
            return Err(RuntimeError::NotActivatable(n));
        }
        for &d in node.mandatory_reads.iter() {
            if !st.data.is_written(d) {
                return Err(RuntimeError::MissingInput { node: n, data: d });
            }
        }
        st.marking.set_node(n, NodeState::Running);
        st.history.record(Event::Started {
            node: n,
            reads: node.read_signature.to_vec(),
        });
        Ok(())
    }

    /// Fails a running activity (see `Execution::fail_activity`).
    pub fn fail_activity(&self, st: &mut InstanceState, n: NodeId) -> Result<(), RuntimeError> {
        let slot = self
            .arena
            .node_slot(n)
            .ok_or(RuntimeError::Model(ModelError::UnknownNode(n)))?;
        if self.arena.nodes[slot as usize].kind != NodeKind::Activity {
            return Err(RuntimeError::NotAnActivity(n));
        }
        if st.marking.node(n) != NodeState::Running {
            return Err(RuntimeError::NotRunning(n));
        }
        st.marking.set_node(n, NodeState::Activated);
        if let Some(i) = st
            .history
            .events
            .iter()
            .rposition(|e| matches!(e, Event::Started { node, .. } if *node == n))
        {
            st.history.events.remove(i);
        }
        Ok(())
    }

    /// Completes a running activity (see `Execution::complete_activity`).
    pub fn complete_activity(
        &self,
        st: &mut InstanceState,
        n: NodeId,
        writes: Vec<(DataId, Value)>,
    ) -> Result<(), RuntimeError> {
        if st.marking.node(n) != NodeState::Running {
            return Err(RuntimeError::NotRunning(n));
        }
        let mut cm = CompactMarking::from_marking(self.arena, &st.marking)?;
        let res = self.complete_on(&mut cm, &mut st.history, &mut st.data, n, writes);
        st.marking = cm.to_marking(self.arena);
        res
    }

    /// Resolves a pending XOR decision (see `Execution::decide_xor`).
    pub fn decide_xor(
        &self,
        st: &mut InstanceState,
        split: NodeId,
        branch_target: NodeId,
    ) -> Result<(), RuntimeError> {
        let slot = self
            .arena
            .node_slot(split)
            .ok_or(RuntimeError::Model(ModelError::UnknownNode(split)))?;
        let node = &self.arena.nodes[slot as usize];
        if node.kind != NodeKind::XorSplit || st.marking.node(split) != NodeState::Activated {
            return Err(RuntimeError::NoDecisionPending(split));
        }
        let chosen = node
            .out_control
            .iter()
            .copied()
            .find(|&e| self.arena.node_id(self.arena.edges[e as usize].to) == branch_target)
            .ok_or(RuntimeError::BranchNotFound {
                split,
                target: branch_target,
            })?;
        let mut cm = CompactMarking::from_marking(self.arena, &st.marking)?;
        self.fire_xor(&mut cm, &mut st.history, slot, chosen);
        let res = self.propagate(&mut cm, &mut st.history, &st.data);
        st.marking = cm.to_marking(self.arena);
        res
    }

    /// Resolves a pending loop decision (see `Execution::decide_loop`).
    pub fn decide_loop(
        &self,
        st: &mut InstanceState,
        loop_end: NodeId,
        iterate: bool,
    ) -> Result<(), RuntimeError> {
        let slot = self
            .arena
            .node_slot(loop_end)
            .ok_or(RuntimeError::Model(ModelError::UnknownNode(loop_end)))?;
        if self.arena.nodes[slot as usize].kind != NodeKind::LoopEnd
            || st.marking.node(loop_end) != NodeState::Activated
        {
            return Err(RuntimeError::NoDecisionPending(loop_end));
        }
        let mut cm = CompactMarking::from_marking(self.arena, &st.marking)?;
        let res = self
            .fire_loop_end(&mut cm, &mut st.history, slot, iterate)
            .and_then(|()| self.propagate(&mut cm, &mut st.history, &st.data));
        st.marking = cm.to_marking(self.arena);
        res
    }

    /// Drives the instance forward (see `Execution::run`).
    pub fn run(
        &self,
        st: &mut InstanceState,
        driver: &mut dyn Driver,
        max_activities: Option<usize>,
    ) -> Result<usize, RuntimeError> {
        self.run_observed(st, driver, max_activities, &mut |_| {})
    }

    /// [`CompiledExecution::run`] reporting every driver-performed state
    /// transition (see `Execution::run_observed`). The marking converts to
    /// compact form **once** for the whole run — the payoff case of the
    /// arena representation.
    pub fn run_observed(
        &self,
        st: &mut InstanceState,
        driver: &mut dyn Driver,
        max_activities: Option<usize>,
        observe: &mut dyn FnMut(RunEvent),
    ) -> Result<usize, RuntimeError> {
        let mut cm = CompactMarking::from_marking(self.arena, &st.marking)?;
        let res = self.run_inner(
            &mut cm,
            &mut st.history,
            &mut st.data,
            driver,
            max_activities,
            observe,
        );
        st.marking = cm.to_marking(self.arena);
        res
    }

    // ------------------------------------------------------------------
    // Compact core: every operation below runs on arena slots only.
    // ------------------------------------------------------------------

    fn run_inner(
        &self,
        cm: &mut CompactMarking,
        hist: &mut ExecutionHistory,
        data: &mut DataContext,
        driver: &mut dyn Driver,
        max_activities: Option<usize>,
        observe: &mut dyn FnMut(RunEvent),
    ) -> Result<usize, RuntimeError> {
        let a = self.arena;
        let mut completed = 0usize;
        let mut stall_guard = 0usize;
        loop {
            if let Some(max) = max_activities {
                if completed >= max {
                    return Ok(completed);
                }
            }
            if cm.node(a.end) == NodeState::Completed {
                return Ok(completed);
            }
            let decisions = self.pending_on(cm);
            if !decisions.is_empty() {
                for d in decisions {
                    match d {
                        Decision::Xor { split, targets } => {
                            let idx = driver.choose_branch(self.schema, split, &targets);
                            let target = *targets.get(idx).ok_or(RuntimeError::BranchNotFound {
                                split,
                                target: split,
                            })?;
                            self.decide_xor_on(cm, hist, data, split, target)?;
                            observe(RunEvent::XorDecided { split, target });
                        }
                        Decision::Loop {
                            loop_end,
                            completed: iters,
                        } => {
                            let it = driver.decide_loop(self.schema, loop_end, iters);
                            self.decide_loop_on(cm, hist, data, loop_end, it)?;
                            observe(RunEvent::LoopDecided {
                                loop_end,
                                iterate: it,
                            });
                        }
                    }
                }
                continue;
            }
            let enabled = self.enabled_on(cm);
            if enabled.is_empty() {
                let running: Vec<NodeId> = (0..a.nodes.len() as u32)
                    .filter(|&s| cm.node(s) == NodeState::Running)
                    .map(|s| a.node_id(s))
                    .collect();
                if running.is_empty() {
                    return Err(RuntimeError::Stuck);
                }
                for n in running {
                    let writes = self.collect_outputs(n, driver);
                    self.complete_on(cm, hist, data, n, writes)?;
                    observe(RunEvent::Completed(n));
                    completed += 1;
                }
                continue;
            }
            let idx = driver.choose_activity(self.schema, &enabled);
            let n = enabled[idx.min(enabled.len() - 1)];
            self.start_on(cm, hist, data, n)?;
            observe(RunEvent::Started(n));
            let writes = self.collect_outputs(n, driver);
            self.complete_on(cm, hist, data, n, writes)?;
            observe(RunEvent::Completed(n));
            completed += 1;
            stall_guard += 1;
            if stall_guard > 1_000_000 {
                return Err(RuntimeError::StepLimitExceeded);
            }
        }
    }

    fn collect_outputs(&self, n: NodeId, driver: &mut dyn Driver) -> Vec<(DataId, Value)> {
        let Some(slot) = self.arena.node_slot(n) else {
            return Vec::new();
        };
        self.arena.nodes[slot as usize]
            .declared_writes
            .iter()
            .map(|&d| (d, driver.output_value(self.schema, n, d)))
            .collect()
    }

    /// Enabled activities from the compact marking, ascending id order
    /// (slot order *is* id order).
    fn enabled_on(&self, cm: &CompactMarking) -> Vec<NodeId> {
        let a = self.arena;
        (0..a.nodes.len() as u32)
            .filter(|&s| {
                cm.node(s) == NodeState::Activated && a.nodes[s as usize].kind == NodeKind::Activity
            })
            .map(|s| a.node_id(s))
            .collect()
    }

    fn pending_on(&self, cm: &CompactMarking) -> Vec<Decision> {
        let a = self.arena;
        let mut out = Vec::new();
        for slot in 0..a.nodes.len() as u32 {
            if cm.node(slot) != NodeState::Activated {
                continue;
            }
            let node = &a.nodes[slot as usize];
            match node.kind {
                NodeKind::XorSplit if !node.has_guards => {
                    let targets = node
                        .out_control
                        .iter()
                        .map(|&e| a.node_id(a.edges[e as usize].to))
                        .collect();
                    out.push(Decision::Xor {
                        split: a.node_id(slot),
                        targets,
                    });
                }
                NodeKind::LoopEnd if node.loop_cond == Some(LoopCond::External) => {
                    out.push(Decision::Loop {
                        loop_end: a.node_id(slot),
                        completed: cm.loop_count(slot),
                    });
                }
                _ => {}
            }
        }
        out
    }

    fn start_on(
        &self,
        cm: &mut CompactMarking,
        hist: &mut ExecutionHistory,
        data: &DataContext,
        n: NodeId,
    ) -> Result<(), RuntimeError> {
        let slot = self
            .arena
            .node_slot(n)
            .ok_or(RuntimeError::Model(ModelError::UnknownNode(n)))?;
        let node = &self.arena.nodes[slot as usize];
        if node.kind != NodeKind::Activity {
            return Err(RuntimeError::NotAnActivity(n));
        }
        if cm.node(slot) != NodeState::Activated {
            return Err(RuntimeError::NotActivatable(n));
        }
        for &d in node.mandatory_reads.iter() {
            if !data.is_written(d) {
                return Err(RuntimeError::MissingInput { node: n, data: d });
            }
        }
        cm.set_node(slot, NodeState::Running);
        hist.record(Event::Started {
            node: n,
            reads: node.read_signature.to_vec(),
        });
        Ok(())
    }

    fn complete_on(
        &self,
        cm: &mut CompactMarking,
        hist: &mut ExecutionHistory,
        data: &mut DataContext,
        n: NodeId,
        writes: Vec<(DataId, Value)>,
    ) -> Result<(), RuntimeError> {
        // The interpreter checks the running state before anything else —
        // an unknown node is simply not running.
        let Some(slot) = self.arena.node_slot(n) else {
            return Err(RuntimeError::NotRunning(n));
        };
        if cm.node(slot) != NodeState::Running {
            return Err(RuntimeError::NotRunning(n));
        }
        let declared = &self.arena.nodes[slot as usize].declared_writes;
        for (d, _) in &writes {
            if !declared.contains(d) {
                return Err(RuntimeError::UndeclaredWrite { node: n, data: *d });
            }
        }
        for d in declared.iter() {
            if !writes.iter().any(|(x, _)| x == d) {
                return Err(RuntimeError::MissingOutput { node: n, data: *d });
            }
        }
        // Validate all before writing any (same all-or-nothing contract as
        // the interpreter; shares DataContext::write's own check).
        for (d, v) in &writes {
            DataContext::validate_write(self.schema, *d, v)?;
        }
        for (d, v) in &writes {
            data.write(self.schema, n, *d, v.clone())?;
        }
        cm.set_node(slot, NodeState::Completed);
        hist.record(Event::Completed { node: n, writes });
        self.signal_outgoing(cm, slot, EdgeState::TrueSignaled);
        self.propagate(cm, hist, data)
    }

    fn decide_xor_on(
        &self,
        cm: &mut CompactMarking,
        hist: &mut ExecutionHistory,
        data: &DataContext,
        split: NodeId,
        branch_target: NodeId,
    ) -> Result<(), RuntimeError> {
        let slot = self
            .arena
            .node_slot(split)
            .ok_or(RuntimeError::Model(ModelError::UnknownNode(split)))?;
        let node = &self.arena.nodes[slot as usize];
        if node.kind != NodeKind::XorSplit || cm.node(slot) != NodeState::Activated {
            return Err(RuntimeError::NoDecisionPending(split));
        }
        let chosen = node
            .out_control
            .iter()
            .copied()
            .find(|&e| self.arena.node_id(self.arena.edges[e as usize].to) == branch_target)
            .ok_or(RuntimeError::BranchNotFound {
                split,
                target: branch_target,
            })?;
        self.fire_xor(cm, hist, slot, chosen);
        self.propagate(cm, hist, data)
    }

    fn decide_loop_on(
        &self,
        cm: &mut CompactMarking,
        hist: &mut ExecutionHistory,
        data: &DataContext,
        loop_end: NodeId,
        iterate: bool,
    ) -> Result<(), RuntimeError> {
        let slot = self
            .arena
            .node_slot(loop_end)
            .ok_or(RuntimeError::Model(ModelError::UnknownNode(loop_end)))?;
        if self.arena.nodes[slot as usize].kind != NodeKind::LoopEnd
            || cm.node(slot) != NodeState::Activated
        {
            return Err(RuntimeError::NoDecisionPending(loop_end));
        }
        self.fire_loop_end(cm, hist, slot, iterate)?;
        self.propagate(cm, hist, data)
    }

    /// Signals all outgoing non-loop edges of a node slot.
    fn signal_outgoing(&self, cm: &mut CompactMarking, slot: u32, state: EdgeState) {
        for &e in self.arena.nodes[slot as usize].out_nonloop.iter() {
            cm.set_edge(e, state);
        }
    }

    /// The activation fixpoint — `Execution::propagate` over slots. Phase
    /// 1 walks slots in ascending order (= ascending node id, the
    /// interpreter's candidate order); phase 2 auto-completes silent
    /// activated nodes, likewise in id order.
    fn propagate(
        &self,
        cm: &mut CompactMarking,
        hist: &mut ExecutionHistory,
        data: &DataContext,
    ) -> Result<(), RuntimeError> {
        let a = self.arena;
        let n_slots = a.nodes.len() as u32;
        loop {
            let mut progressed = false;

            // Phase 1: activate / skip nodes.
            for slot in 0..n_slots {
                if cm.node(slot) != NodeState::NotActivated {
                    continue;
                }
                match self.evaluate_incoming(cm, slot) {
                    Readiness::Ready => {
                        cm.set_node(slot, NodeState::Activated);
                        progressed = true;
                    }
                    Readiness::Dead => {
                        cm.set_node(slot, NodeState::Skipped);
                        self.signal_outgoing(cm, slot, EdgeState::FalseSignaled);
                        progressed = true;
                    }
                    Readiness::Wait => {}
                }
            }

            // Phase 2: auto-complete silent activated nodes.
            let silent: Vec<u32> = (0..n_slots)
                .filter(|&s| cm.node(s) == NodeState::Activated && a.nodes[s as usize].silent)
                .collect();
            for slot in silent {
                if cm.node(slot) != NodeState::Activated {
                    continue; // a loop reset in this sweep may have cleared it
                }
                let node = &a.nodes[slot as usize];
                match node.kind {
                    NodeKind::XorSplit => {
                        if node.has_guards {
                            let chosen = self.evaluate_guards(data, slot)?;
                            self.fire_xor(cm, hist, slot, chosen);
                            progressed = true;
                        }
                        // else: external decision pending
                    }
                    NodeKind::LoopEnd => match node.loop_cond.clone() {
                        Some(LoopCond::Times(total)) => {
                            let iterate = cm.loop_count(slot) + 1 < total;
                            self.fire_loop_end(cm, hist, slot, iterate)?;
                            progressed = true;
                        }
                        Some(LoopCond::While(g)) => {
                            let iterate = g.eval(data.value(g.data));
                            self.fire_loop_end(cm, hist, slot, iterate)?;
                            progressed = true;
                        }
                        Some(LoopCond::External) => {} // pending
                        None => return Err(RuntimeError::LoopNotDecidable(a.node_id(slot))),
                    },
                    _ => {
                        cm.set_node(slot, NodeState::Completed);
                        self.signal_outgoing(cm, slot, EdgeState::TrueSignaled);
                        progressed = true;
                    }
                }
            }

            if !progressed {
                return Ok(());
            }
        }
    }

    /// First-match guard evaluation over the outgoing control edges in
    /// adjacency order; the (last) unguarded edge is the else branch.
    fn evaluate_guards(&self, data: &DataContext, slot: u32) -> Result<u32, RuntimeError> {
        let a = self.arena;
        let mut else_edge = None;
        for &e in a.nodes[slot as usize].out_control.iter() {
            match &a.edges[e as usize].guard {
                Some(g) => {
                    if g.eval(data.value(g.data)) {
                        return Ok(e);
                    }
                }
                None => else_edge = Some(e),
            }
        }
        else_edge.ok_or(RuntimeError::NoBranchMatches(a.node_id(slot)))
    }

    fn fire_xor(
        &self,
        cm: &mut CompactMarking,
        hist: &mut ExecutionHistory,
        slot: u32,
        chosen: u32,
    ) {
        let a = self.arena;
        let target = a.node_id(a.edges[chosen as usize].to);
        hist.record(Event::XorChosen {
            split: a.node_id(slot),
            branch_target: target,
        });
        cm.set_node(slot, NodeState::Completed);
        for &e in a.nodes[slot as usize].out_nonloop.iter() {
            let kind = a.edges[e as usize].kind;
            // Sync edges signal true regardless: the split itself completed.
            let s = if (e == chosen && kind == EdgeKind::Control) || kind == EdgeKind::Sync {
                EdgeState::TrueSignaled
            } else {
                EdgeState::FalseSignaled
            };
            cm.set_edge(e, s);
        }
    }

    fn fire_loop_end(
        &self,
        cm: &mut CompactMarking,
        hist: &mut ExecutionHistory,
        slot: u32,
        iterate: bool,
    ) -> Result<(), RuntimeError> {
        let a = self.arena;
        let loop_end = a.node_id(slot);
        hist.record(Event::LoopDecided { loop_end, iterate });
        cm.loops[slot as usize] += 1;
        if iterate {
            let ls = a.nodes[slot as usize]
                .loop_start
                .ok_or(RuntimeError::LoopNotDecidable(loop_end))?;
            hist.record(Event::LoopReset {
                loop_start: a.node_id(ls),
            });
            self.reset_loop_body(cm, slot);
        } else {
            cm.set_node(slot, NodeState::Completed);
            self.signal_outgoing(cm, slot, EdgeState::TrueSignaled);
        }
        Ok(())
    }

    /// Resets the loop body for the next iteration (precomputed body
    /// tables; see `Execution::reset_loop_body` for the semantics).
    fn reset_loop_body(&self, cm: &mut CompactMarking, loop_end_slot: u32) {
        let node = &self.arena.nodes[loop_end_slot as usize];
        for &ns in node.loop_body_nodes.iter() {
            cm.set_node(ns, NodeState::NotActivated);
            if ns != loop_end_slot {
                cm.loops[ns as usize] = 0; // nested loop counters restart
            }
        }
        for &es in node.loop_body_edges.iter() {
            cm.set_edge(es, EdgeState::NotSignaled);
        }
    }

    fn evaluate_incoming(&self, cm: &CompactMarking, slot: u32) -> Readiness {
        let node = &self.arena.nodes[slot as usize];
        let control_total = node.in_control.len();
        if control_total == 0 {
            // Only the start node has no incoming control edges; it is
            // completed explicitly by `init` and never (re-)activated here.
            return Readiness::Wait;
        }
        let mut control_true = 0usize;
        let mut control_false = 0usize;
        for &e in node.in_control.iter() {
            match cm.edge(e) {
                EdgeState::TrueSignaled => control_true += 1,
                EdgeState::FalseSignaled => control_false += 1,
                EdgeState::NotSignaled => {}
            }
        }
        let dead;
        let ready;
        if node.kind == NodeKind::XorJoin {
            ready = control_true >= 1;
            dead = !ready && control_false == control_total;
        } else {
            dead = control_false > 0;
            ready = !dead && control_true == control_total;
        }
        if dead {
            return Readiness::Dead;
        }
        if !ready {
            return Readiness::Wait;
        }
        for &e in node.in_sync.iter() {
            if !cm.edge(e).signaled() {
                return Readiness::Wait;
            }
        }
        Readiness::Ready
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::execution::{DefaultDriver, Execution};
    use adept_model::{Blocks, CmpOp, Guard, SchemaBuilder, ValueType};

    fn pair(schema: &ProcessSchema) -> (Execution<'_>, CompiledSchema) {
        let ex = Execution::new(schema).expect("block analysis");
        let arena = CompiledSchema::compile(schema, &ex.blocks);
        (ex, arena)
    }

    /// Drives both paths through the same scripted steps and asserts the
    /// full instance states stay equal after every step.
    fn assert_lockstep(schema: &ProcessSchema) {
        let (ex, arena) = pair(schema);
        let cx = CompiledExecution::new(schema, &arena);
        let mut si = ex.init().unwrap();
        let mut sc = cx.init().unwrap();
        assert_eq!(si, sc, "init diverged");
        let mut guard = 0;
        while !ex.is_finished(&si) {
            assert_eq!(ex.pending_decisions(&si), cx.pending_decisions(&sc));
            for d in ex.pending_decisions(&si) {
                match d {
                    Decision::Xor { split, targets } => {
                        ex.decide_xor(&mut si, split, targets[0]).unwrap();
                        cx.decide_xor(&mut sc, split, targets[0]).unwrap();
                    }
                    Decision::Loop { loop_end, .. } => {
                        ex.decide_loop(&mut si, loop_end, false).unwrap();
                        cx.decide_loop(&mut sc, loop_end, false).unwrap();
                    }
                }
            }
            assert_eq!(ex.enabled(&si), cx.enabled(&sc));
            let Some(&n) = ex.enabled(&si).first() else {
                break;
            };
            ex.start_activity(&mut si, n).unwrap();
            cx.start_activity(&mut sc, n).unwrap();
            let writes: Vec<_> = schema
                .writes_of(n)
                .map(|de| de.data)
                .map(|d| (d, Value::Int(7)))
                .collect();
            ex.complete_activity(&mut si, n, writes.clone()).unwrap();
            cx.complete_activity(&mut sc, n, writes).unwrap();
            assert_eq!(si, sc, "state diverged after {n}");
            guard += 1;
            assert!(guard < 100, "runaway test loop");
        }
        assert_eq!(ex.is_finished(&si), cx.is_finished(&sc));
    }

    #[test]
    fn sequence_lockstep() {
        let mut b = SchemaBuilder::new("seq");
        let d = b.data("x", ValueType::Int);
        let a = b.activity("a");
        b.write(a, d);
        let r = b.activity("r");
        b.read(r, d);
        assert_lockstep(&b.build().unwrap());
    }

    #[test]
    fn parallel_and_sync_lockstep() {
        let mut b = SchemaBuilder::new("par");
        b.and_split();
        b.branch();
        let p = b.activity("p");
        b.branch();
        let c = b.activity("c");
        b.and_join();
        b.activity("z");
        b.sync(p, c);
        assert_lockstep(&b.build().unwrap());
    }

    #[test]
    fn guarded_xor_lockstep() {
        let mut b = SchemaBuilder::new("xor");
        let d = b.data("amount", ValueType::Int);
        let w = b.activity("w");
        b.write(w, d);
        b.xor_split();
        b.case_when(Guard::new(d, CmpOp::Ge, Value::Int(100)));
        b.activity("big");
        b.case();
        b.activity("small");
        b.xor_join();
        assert_lockstep(&b.build().unwrap());
    }

    #[test]
    fn counted_loop_runs_identically() {
        let mut b = SchemaBuilder::new("loop");
        b.loop_start();
        b.activity("body");
        b.loop_end(LoopCond::Times(3));
        let s = b.build().unwrap();
        let (ex, arena) = pair(&s);
        let cx = CompiledExecution::new(&s, &arena);
        let mut si = ex.init().unwrap();
        let mut sc = cx.init().unwrap();
        let ni = ex.run(&mut si, &mut DefaultDriver, None).unwrap();
        let nc = cx.run(&mut sc, &mut DefaultDriver, None).unwrap();
        assert_eq!(ni, nc);
        assert_eq!(si, sc);
        assert!(cx.is_finished(&sc));
    }

    #[test]
    fn errors_match_interpreter() {
        let mut b = SchemaBuilder::new("err");
        let d = b.data("x", ValueType::Int);
        let a = b.activity("a");
        let c = b.activity("c");
        let _ = d;
        let s = b.build().unwrap();
        let (ex, arena) = pair(&s);
        let cx = CompiledExecution::new(&s, &arena);
        let mut si = ex.init().unwrap();
        let mut sc = cx.init().unwrap();
        // Not activated yet.
        assert_eq!(
            ex.start_activity(&mut si, c).unwrap_err(),
            cx.start_activity(&mut sc, c).unwrap_err()
        );
        // Complete before start.
        assert_eq!(
            ex.complete_activity(&mut si, a, vec![]).unwrap_err(),
            cx.complete_activity(&mut sc, a, vec![]).unwrap_err()
        );
        ex.start_activity(&mut si, a).unwrap();
        cx.start_activity(&mut sc, a).unwrap();
        // Undeclared write.
        assert_eq!(
            ex.complete_activity(&mut si, a, vec![(d, Value::Int(1))])
                .unwrap_err(),
            cx.complete_activity(&mut sc, a, vec![(d, Value::Int(1))])
                .unwrap_err()
        );
        // Fail drops back and erases the Started record.
        ex.fail_activity(&mut si, a).unwrap();
        cx.fail_activity(&mut sc, a).unwrap();
        assert_eq!(si, sc);
    }

    #[test]
    fn compact_marking_round_trips() {
        let mut b = SchemaBuilder::new("rt");
        b.loop_start();
        b.activity("body");
        b.loop_end(LoopCond::Times(2));
        let s = b.build().unwrap();
        let blocks = Blocks::analyze(&s).unwrap();
        let arena = CompiledSchema::compile(&s, &blocks);
        let ex = Execution::with_blocks(&s, blocks.clone());
        let mut st = ex.init().unwrap();
        ex.run(&mut st, &mut DefaultDriver, None).unwrap();
        let cm = CompactMarking::from_marking(&arena, &st.marking).unwrap();
        let back = cm.to_marking(&arena);
        assert_eq!(back, st.marking);
        assert_eq!(
            serde_json::to_string(&back).unwrap(),
            serde_json::to_string(&st.marking).unwrap()
        );
    }

    #[test]
    fn foreign_marking_is_rejected() {
        let mut b = SchemaBuilder::new("f1");
        b.activity("a");
        let s1 = b.build().unwrap();
        let blocks = Blocks::analyze(&s1).unwrap();
        let arena = CompiledSchema::compile(&s1, &blocks);
        let mut m = Marking::new();
        m.set_node(NodeId(999), NodeState::Completed);
        assert!(CompactMarking::from_marking(&arena, &m).is_err());
    }
}
