//! Container transportation (paper reference [3], Bassil/Keller/Kropf):
//! parallel customs handling and vessel loading ordered by a sync edge; a
//! storm forces an ad-hoc re-route (insert "divert to alternate port"),
//! demonstrating correctness-preserving deviation under way.
//!
//! Run with: `cargo run -p adept-examples --bin container_logistics`

use adept_core::{ChangeOp, NewActivity};
use adept_engine::{EngineCommand, ProcessEngine};
use adept_simgen::scenarios;

fn main() {
    let engine = ProcessEngine::new();
    let name = engine.deploy(scenarios::container_logistics()).unwrap();
    let v1 = engine.repo.deployed(&name, 1).unwrap();

    let shipment = engine.create_instance(&name).unwrap();
    engine
        .submit(EngineCommand::Drive {
            instance: shipment,
            max: Some(3),
        })
        .unwrap();
    println!(
        "shipment under way:\n{}",
        engine.render_instance(shipment).unwrap()
    );

    // Storm: divert before sea transport (one-op change transaction).
    let sea = v1.schema.node_by_name("sea transport").unwrap().id;
    let deliver = v1.schema.node_by_name("deliver container").unwrap().id;
    let mut session = engine.begin_change(shipment).unwrap();
    session
        .stage(&ChangeOp::SerialInsert {
            activity: NewActivity::named("divert to alternate port").with_role("dispatcher"),
            pred: sea,
            succ: deliver,
        })
        .unwrap();
    session.commit().unwrap();
    println!(
        "ad-hoc diversion inserted (instance is now biased: {})",
        engine.store.get(shipment).unwrap().bias.summary()
    );

    // An illegal deviation is rejected at commit: deleting the
    // already-completed booking violates the state precondition, and the
    // failed commit leaves the shipment untouched.
    let book = v1.schema.node_by_name("book transport").unwrap().id;
    let mut session = engine.begin_change(shipment).unwrap();
    session
        .stage(&ChangeOp::DeleteActivity { node: book })
        .unwrap();
    match session.commit() {
        Err(e) => println!("deleting completed booking correctly rejected: {e}"),
        Ok(_) => unreachable!("must be rejected"),
    }

    let outcome = engine
        .submit(EngineCommand::Drive {
            instance: shipment,
            max: None,
        })
        .unwrap();
    assert!(outcome.finished);
    println!(
        "\ndelivered:\n{}",
        engine.render_instance(shipment).unwrap()
    );
}
