//! Quickstart: model a process, run an instance, apply an ad-hoc change,
//! evolve the type and migrate — the whole ADEPT2 loop in ~60 lines.
//!
//! Run with: `cargo run -p adept-examples --bin quickstart`

use adept_core::{ChangeOp, MigrationOptions, NewActivity};
use adept_engine::ProcessEngine;
use adept_model::{SchemaBuilder, ValueType};
use adept_state::DefaultDriver;

fn main() {
    // 1. Model a template with the fluent builder.
    let mut b = SchemaBuilder::new("expense approval");
    let amount = b.data("amount", ValueType::Int);
    let submit = b.activity("submit expense");
    b.write(submit, amount);
    let review = b.activity("review");
    b.read(review, amount);
    let payout = b.activity("payout");
    let _ = payout;
    let schema = b.build().expect("well-formed schema");

    // 2. Deploy and start instances.
    let engine = ProcessEngine::new();
    let name = engine.deploy(schema).unwrap();
    let i1 = engine.create_instance(&name).unwrap();
    let i2 = engine.create_instance(&name).unwrap();
    println!("deployed \"{name}\", created {i1} and {i2}");

    // 3. Execute I1 one step, then deviate ad hoc: insert an audit step.
    engine.run_instance(i1, &mut DefaultDriver, Some(1)).unwrap();
    let v1 = engine.repo.deployed(&name, 1).unwrap();
    let review_id = v1.schema.node_by_name("review").unwrap().id;
    let payout_id = v1.schema.node_by_name("payout").unwrap().id;
    engine
        .ad_hoc_change(
            i1,
            &ChangeOp::SerialInsert {
                activity: NewActivity::named("audit").with_role("auditor"),
                pred: review_id,
                succ: payout_id,
            },
        )
        .unwrap();
    println!("\nI1 after the ad-hoc change:\n{}", engine.render_instance(i1).unwrap());

    // 4. Evolve the type for everyone: notify the submitter at the end.
    let end = v1.schema.end_node();
    engine
        .evolve_type(
            &name,
            &[ChangeOp::SerialInsert {
                activity: NewActivity::named("notify submitter"),
                pred: payout_id,
                succ: end,
            }],
        )
        .unwrap();
    let report = engine
        .migrate_all(&name, &MigrationOptions::default(), 1)
        .unwrap();
    println!("{report}");

    // 5. Finish both instances; I1 executes audit + notify, I2 just notify.
    for id in [i1, i2] {
        engine.run_instance(id, &mut DefaultDriver, None).unwrap();
        assert!(engine.is_finished(id).unwrap());
        println!("{id} finished:\n{}", engine.render_instance(id).unwrap());
    }
}
