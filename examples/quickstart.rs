//! Quickstart: model a process, execute it through the unified command
//! API — typed [`EngineCommand`]s submitted one by one or as a batch,
//! each returning a [`CommandOutcome`] with the emitted events and the
//! enabled-set delta — then deviate ad hoc and evolve the type through
//! the transactional change surface (stage → preview → commit), and
//! migrate. The whole ADEPT2 loop in ~100 lines.
//!
//! Run with: `cargo run -p adept-examples --bin quickstart`

use adept_core::{ChangeOp, MigrationOptions, NewActivity};
use adept_engine::{CommandOutcome, EngineCommand, ProcessEngine};
use adept_model::{SchemaBuilder, ValueType};

fn main() {
    // 1. Model a template with the fluent builder.
    let mut b = SchemaBuilder::new("expense approval");
    let amount = b.data("amount", ValueType::Int);
    let submit = b.activity("submit expense");
    b.write(submit, amount);
    let review = b.activity("review");
    b.read(review, amount);
    let payout = b.activity("payout");
    let _ = payout;
    let schema = b.build().expect("well-formed schema");

    // 2. Deploy, then create two instances in ONE batch. Every command
    //    returns an outcome carrying the new instance and what it enabled.
    let engine = ProcessEngine::new();
    let name = engine.deploy(schema).unwrap();
    let created: Vec<CommandOutcome> = engine
        .submit_batch(vec![
            EngineCommand::CreateInstance {
                type_name: name.clone(),
            },
            EngineCommand::CreateInstance {
                type_name: name.clone(),
            },
        ])
        .into_iter()
        .map(|r| r.unwrap())
        .collect();
    let (i1, i2) = (created[0].instance, created[1].instance);
    println!("deployed \"{name}\", created {i1} and {i2}");

    // 3. Execute I1's first step explicitly: start + complete as one
    //    batched submission. The outcome reports the freshly enabled
    //    follow-up work — no separate worklist poll needed.
    let submit_id = engine.repo.deployed(&name, 1).unwrap();
    let submit_node = submit_id.schema.node_by_name("submit expense").unwrap().id;
    let outcomes = engine.submit_batch(vec![
        EngineCommand::Start {
            instance: i1,
            node: submit_node,
        },
        EngineCommand::Complete {
            instance: i1,
            node: submit_node,
            writes: vec![(amount, adept_model::Value::Int(420))],
        },
    ]);
    let after_complete = outcomes[1].as_ref().unwrap();
    println!(
        "I1 completed \"submit expense\"; newly enabled: {:?} ({} events recorded)",
        after_complete.newly_enabled,
        after_complete.events.len()
    );

    // 4. Deviate I1 ad hoc — transactionally. Stage as many operations as
    //    the deviation needs; verification and compliance run ONCE.
    let v1 = engine.repo.deployed(&name, 1).unwrap();
    let review_id = v1.schema.node_by_name("review").unwrap().id;
    let payout_id = v1.schema.node_by_name("payout").unwrap().id;
    let mut session = engine.begin_change(i1).unwrap();
    let audit = session
        .stage(&ChangeOp::SerialInsert {
            activity: NewActivity::named("audit").with_role("auditor"),
            pred: review_id,
            succ: payout_id,
        })
        .unwrap()
        .inserted_activity()
        .unwrap();
    session
        .stage(&ChangeOp::AddDataEdge {
            node: audit,
            data: amount,
            mode: adept_model::AccessMode::Read,
            optional: false,
        })
        .unwrap();
    let preview = session.preview().unwrap();
    print!("\npreviewing the staged deviation:\n{preview}");
    assert!(preview.is_committable());
    let receipt = session.commit().unwrap();
    println!(
        "committed txn #{} ({} ops) — I1 after the change:\n{}",
        receipt.seq,
        receipt.ops,
        engine.render_instance(i1).unwrap()
    );

    // 5. Evolve the type for everyone with the same lifecycle, migrate.
    let end = v1.schema.end_node();
    let mut evolution = engine.begin_evolution(&name).unwrap();
    evolution
        .stage(&ChangeOp::SerialInsert {
            activity: NewActivity::named("notify submitter"),
            pred: payout_id,
            succ: end,
        })
        .unwrap();
    let receipt = evolution.commit().unwrap();
    println!(
        "evolved \"{name}\" to V{} (txn #{})",
        receipt.new_version.unwrap(),
        receipt.seq
    );
    let report = engine
        .migrate_all(&name, &MigrationOptions::default(), 1)
        .unwrap();
    println!("{report}");

    // 6. Drive both instances to completion in one batch; I1 executes
    //    audit + notify, I2 just notify. Drives emit a complete event
    //    stream — starts, completions and decisions all hit the monitor.
    for res in engine.submit_batch(
        [i1, i2]
            .into_iter()
            .map(|id| EngineCommand::Drive {
                instance: id,
                max: None,
            })
            .collect(),
    ) {
        let outcome = res.unwrap();
        assert!(outcome.finished);
        println!(
            "{} finished ({} activities driven):\n{}",
            outcome.instance,
            outcome.completed,
            engine.render_instance(outcome.instance).unwrap()
        );
    }

    // The persisted transaction log remembers both commits (and their
    // inverses, the rollback material).
    for rec in engine.txn_log.records() {
        println!("{rec}");
    }
}
