//! Quickstart: model a process, run an instance, and make every dynamic
//! change through the transactional surface — stage → preview → commit —
//! for both an ad-hoc instance deviation and a type evolution, then
//! migrate. The whole ADEPT2 loop in ~80 lines.
//!
//! Run with: `cargo run -p adept-examples --bin quickstart`

use adept_core::{ChangeOp, MigrationOptions, NewActivity};
use adept_engine::ProcessEngine;
use adept_model::{SchemaBuilder, ValueType};
use adept_state::DefaultDriver;

fn main() {
    // 1. Model a template with the fluent builder.
    let mut b = SchemaBuilder::new("expense approval");
    let amount = b.data("amount", ValueType::Int);
    let submit = b.activity("submit expense");
    b.write(submit, amount);
    let review = b.activity("review");
    b.read(review, amount);
    let payout = b.activity("payout");
    let _ = payout;
    let schema = b.build().expect("well-formed schema");

    // 2. Deploy and start instances.
    let engine = ProcessEngine::new();
    let name = engine.deploy(schema).unwrap();
    let i1 = engine.create_instance(&name).unwrap();
    let i2 = engine.create_instance(&name).unwrap();
    println!("deployed \"{name}\", created {i1} and {i2}");

    // 3. Execute I1 one step, then deviate ad hoc — transactionally.
    //    Stage as many operations as the deviation needs; verification
    //    and compliance run ONCE, at commit.
    engine
        .run_instance(i1, &mut DefaultDriver, Some(1))
        .unwrap();
    let v1 = engine.repo.deployed(&name, 1).unwrap();
    let review_id = v1.schema.node_by_name("review").unwrap().id;
    let payout_id = v1.schema.node_by_name("payout").unwrap().id;

    let mut session = engine.begin_change(i1).unwrap();
    let audit = session
        .stage(&ChangeOp::SerialInsert {
            activity: NewActivity::named("audit").with_role("auditor"),
            pred: review_id,
            succ: payout_id,
        })
        .unwrap()
        .inserted_activity()
        .unwrap();
    session
        .stage(&ChangeOp::AddDataEdge {
            node: audit,
            data: amount,
            mode: adept_model::AccessMode::Read,
            optional: false,
        })
        .unwrap();

    // Pure dry run: per-op diagnostics + verification + compliance,
    // without touching the instance.
    let preview = session.preview().unwrap();
    print!("\npreviewing the staged deviation:\n{preview}");
    assert!(preview.is_committable());

    // Atomic commit: schema overlay, adapted state, bias and txn log all
    // change together — or not at all.
    let receipt = session.commit().unwrap();
    println!(
        "committed txn #{} ({} ops) — I1 after the change:\n{}",
        receipt.seq,
        receipt.ops,
        engine.render_instance(i1).unwrap()
    );

    // 4. Evolve the type for everyone with the same lifecycle.
    let end = v1.schema.end_node();
    let mut evolution = engine.begin_evolution(&name).unwrap();
    evolution
        .stage(&ChangeOp::SerialInsert {
            activity: NewActivity::named("notify submitter"),
            pred: payout_id,
            succ: end,
        })
        .unwrap();
    let receipt = evolution.commit().unwrap();
    println!(
        "evolved \"{name}\" to V{} (txn #{})",
        receipt.new_version.unwrap(),
        receipt.seq
    );
    let report = engine
        .migrate_all(&name, &MigrationOptions::default(), 1)
        .unwrap();
    println!("{report}");

    // 5. Finish both instances; I1 executes audit + notify, I2 just notify.
    for id in [i1, i2] {
        engine.run_instance(id, &mut DefaultDriver, None).unwrap();
        assert!(engine.is_finished(id).unwrap());
        println!("{id} finished:\n{}", engine.render_instance(id).unwrap());
    }

    // The persisted transaction log remembers both commits (and their
    // inverses, the rollback material).
    for rec in engine.txn_log.records() {
        println!("{rec}");
    }
}
