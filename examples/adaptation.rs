//! Automatic run-time adaptation: a flaky order process is repaired by
//! the `adept-adapt` loop — failures are retried with backoff, then
//! skipped; an unskippable failure is escalated onto the supervisor's
//! worklist. Every recovery passes the engine's change-transaction
//! preview before it commits, and the whole trail lands on the monitor
//! stream.

use adept_adapt::{AdaptationConfig, AdaptationLoop, EscalateToWorklist, RetryThenSkip};
use adept_engine::{EngineCommand, ProcessEngine};
use adept_model::InstanceId;
use adept_simgen::exception_scenario;

fn submit(engine: &ProcessEngine, cmd: EngineCommand) {
    engine.submit(cmd).expect("command applies");
}

fn main() {
    let engine = ProcessEngine::new();

    // One skippable flaky order ("process" fails twice, then would
    // succeed) and one unskippable variant nobody can repair.
    let name = engine.deploy(exception_scenario()).expect("deploys");
    let mut hard = exception_scenario();
    hard.name = "hard order".into();
    let p = hard.node_by_name("process").expect("process exists").id;
    hard.node_mut(p).expect("process exists").attrs.skippable = false;
    let hard_name = engine.deploy(hard).expect("deploys");

    let flaky = engine.create_instance(&name).expect("creates");
    let stuck = engine.create_instance(&hard_name).expect("creates");

    let mut looper = AdaptationLoop::new(
        &engine,
        AdaptationConfig {
            max_in_flight: 8,
            ..AdaptationConfig::default()
        },
    )
    .with_policy(RetryThenSkip {
        max_retries: 1,
        base_delay: 1,
    })
    .with_policy(EscalateToWorklist::new("supervisor"));

    // Drive both orders into their flaky step and fail it.
    for id in [flaky, stuck] {
        let (schema, _) = engine.materialized(id).expect("materializes");
        let intake = schema.node_by_name("intake").expect("intake").id;
        let process = schema.node_by_name("process").expect("process").id;
        submit(
            &engine,
            EngineCommand::Start {
                instance: id,
                node: intake,
            },
        );
        submit(
            &engine,
            EngineCommand::Complete {
                instance: id,
                node: intake,
                writes: vec![],
            },
        );
        submit(
            &engine,
            EngineCommand::Start {
                instance: id,
                node: process,
            },
        );
        submit(
            &engine,
            EngineCommand::FailActivity {
                instance: id,
                node: process,
                reason: "supplier timeout".into(),
            },
        );
    }

    // Tick 1 plans: a backoff retry for the skippable order, an
    // escalation for the unskippable one. Tick 2 fires the re-start.
    looper.tick();
    looper.tick();
    // Both retried steps fail once more — the budget is now spent, so
    // the next tick deletes the skippable step and escalates the
    // unskippable one.
    for id in [flaky, stuck] {
        let process = engine
            .materialized(id)
            .expect("materializes")
            .0
            .node_by_name("process")
            .expect("still present")
            .id;
        submit(
            &engine,
            EngineCommand::FailActivity {
                instance: id,
                node: process,
                reason: "supplier timeout".into(),
            },
        );
    }
    looper.tick();

    // The skippable order now runs to completion without its flaky step.
    submit(
        &engine,
        EngineCommand::Drive {
            instance: flaky,
            max: None,
        },
    );

    println!("== adaptation trail ==");
    for (seq, event) in engine.monitor.events() {
        println!("  {seq:>3}  {event}");
    }

    println!("\n== supervisor worklist ==");
    for item in engine.worklist_for("supervisor") {
        println!("  {item}");
    }

    let report = looper.report();
    println!("\n== report ==");
    println!(
        "  ticks {}, deviations {}, committed {}, escalated {}, retries fired {}",
        report.ticks, report.deviations, report.committed, report.escalated, report.retries_fired
    );
    assert!(report.committed >= 2, "retry + skip must have committed");
    assert_eq!(report.escalated, 1, "the hard order must be escalated");
    let escalated: Vec<InstanceId> = looper.escalated_instances().collect();
    assert_eq!(escalated, vec![stuck]);
}
