//! Placeholder library target; the examples live in the `[[bin]]` targets
//! of this package (`cargo run -p adept-examples --bin quickstart`).
