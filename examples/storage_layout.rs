//! Walk-through of paper Fig. 2: how unchanged instances share their
//! schema redundant-free while biased instances carry a minimal
//! substitution block that overlays the original schema on access —
//! compared against the two alternatives the paper dismisses.
//!
//! Run with: `cargo run -p adept-examples --bin storage_layout`

use adept_core::{apply_op, ChangeOp, Delta, NewActivity};
use adept_model::EdgeKind;
use adept_simgen::{generate_schema, GenParams};
use adept_storage::{InstanceStore, Representation, SchemaRepository, SubstitutionBlock};

fn main() {
    for strategy in [
        Representation::RedundantFree,
        Representation::FullCopy,
        Representation::Hybrid,
    ] {
        let schema = generate_schema(&GenParams::sized(60), 11);
        let repo = SchemaRepository::new();
        let name = repo.deploy(schema).unwrap();
        let store = InstanceStore::new(strategy);
        let dep = repo.deployed(&name, 1).unwrap();

        // 40 instances; every fourth is biased with one ad-hoc insert.
        for k in 0..40u64 {
            let st = dep.execution().init().unwrap();
            let id = store.create(&name, 1, st.clone());
            if k % 4 == 0 {
                let mut materialized = (*dep.schema).clone();
                materialized.reserve_private_id_space();
                let (pred, succ) = materialized
                    .edges()
                    .find(|e| e.kind == EdgeKind::Control)
                    .map(|e| (e.from, e.to))
                    .unwrap();
                let mut bias = Delta::new();
                bias.push(
                    apply_op(
                        &mut materialized,
                        &ChangeOp::SerialInsert {
                            activity: NewActivity::named("ad-hoc step"),
                            pred,
                            succ,
                        },
                    )
                    .unwrap(),
                );
                let block = SubstitutionBlock::from_delta(&bias, &materialized);
                println!(
                    "{strategy:?} {id}: substitution block = {} nodes / {} edges / {} bytes",
                    block.added_nodes.len(),
                    block.added_edges.len(),
                    block.approx_size()
                );
                store.set_bias(id, bias, &materialized, st);
            }
            // Touch the schema (exercises sharing / overlay / copies).
            store.schema_of(&repo, id);
            store.schema_of(&repo, id);
        }

        let mem = store.memory(&repo);
        let stats = store.stats();
        println!(
            "\n{strategy:?}: total {} KiB (schemas once: {} B, states: {} B, bias+blocks: {} B, \
             full copies: {} B, overlay cache: {} B)",
            mem.total() / 1024,
            mem.schema_bytes,
            mem.state_bytes,
            mem.bias_bytes,
            mem.full_copy_bytes,
            mem.cache_bytes
        );
        println!(
            "accesses: {} shared hits, {} cache hits, {} materialisations\n",
            stats.shared_hits, stats.cache_hits, stats.materializations
        );
    }
    println!(
        "-> the Hybrid strategy keeps biased instances cheap (minimal block + cached overlay),"
    );
    println!("   RedundantFree pays a materialisation per access, FullCopy pays a schema copy per instance.");

    sharded_layout();
}

/// The concurrency side of the store: instances spread over independent
/// shard locks, ids from a lock-free allocator, stats from atomics —
/// worker threads creating and reading instances never serialise on one
/// global lock.
fn sharded_layout() {
    let schema = generate_schema(&GenParams::sized(20), 7);
    let repo = SchemaRepository::new();
    let name = repo.deploy(schema).unwrap();
    let store = InstanceStore::new(Representation::Hybrid);
    let dep = repo.deployed(&name, 1).unwrap();

    std::thread::scope(|scope| {
        for _ in 0..4 {
            let (store, repo, name) = (&store, &repo, &name);
            let st = dep.execution().init().unwrap();
            scope.spawn(move || {
                for _ in 0..250 {
                    let id = store.create(name, 1, st.clone());
                    store.schema_of(repo, id); // lock-free stats tally
                }
            });
        }
    });

    println!(
        "\nsharded store: {} instances over {} shards, ids dense and unique \
         (highest {}), {} shared hits counted without a stats lock",
        store.len(),
        store.shard_count(),
        store.ids().last().unwrap(),
        store.stats().shared_hits
    );
}
