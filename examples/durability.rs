//! Durability: a crash-safe engine on a write-ahead log.
//!
//! A durable engine journals every committed mutation — deployments,
//! creations, execution post-images, change transactions, migrations,
//! removals — to a [`StorageBackend`] *before* it becomes visible. After
//! a crash, [`recovery::recover_from`] rebuilds the exact engine from
//! the latest checkpoint snapshot plus the log tail; a torn final record
//! (the crash hit mid-append) is truncated away.
//!
//! Run with: `cargo run -p adept-examples --bin durability`

use adept_engine::{recovery, EngineCommand, ProcessEngine};
use adept_model::SchemaBuilder;
use adept_storage::{from_json, to_json, FileBackend, StorageBackend, SyncPolicy};

fn main() {
    let dir = std::env::temp_dir().join(format!("adept-durability-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let wal_path = dir.join("engine.wal");
    let snap_path = dir.join("checkpoint.json");
    // SyncPolicy::Always fsyncs every append — the strict guarantee.
    // Interval(n) / Never trade durability of the last records for speed.
    let backend = || -> Box<dyn StorageBackend> {
        Box::new(FileBackend::with_policy(&wal_path, SyncPolicy::Always))
    };

    // ---- Session 1: a durable engine does some work, then "crashes". --
    {
        let engine = ProcessEngine::with_wal(backend()).unwrap();
        let mut b = SchemaBuilder::new("expense approval");
        b.activity("submit expense");
        b.activity("payout");
        let name = engine.deploy(b.build().unwrap()).unwrap();

        let first = engine.create_instance(&name).unwrap();
        engine
            .submit(EngineCommand::Drive {
                instance: first,
                max: Some(1),
            })
            .unwrap();

        // Checkpoint: persist a snapshot, then truncate the log — the
        // WAL is only dropped after its replacement is safely on disk.
        engine
            .checkpoint_with(|snap| {
                std::fs::write(&snap_path, to_json(snap)?)
                    .map_err(|e| adept_storage::StorageError::io("write checkpoint", &e))
            })
            .unwrap();

        // Post-checkpoint work lands in the fresh log tail.
        engine.create_instance(&name).unwrap();
        println!(
            "session 1: {} instances, checkpoint at wal #{}, then crash",
            engine.store.len(),
            engine.snapshot().wal_seq
        );
        // The engine is dropped without any shutdown handshake — every
        // committed mutation is already on disk.
    }

    // ---- Session 2: restart from checkpoint + WAL tail. --------------
    let snapshot = from_json(&std::fs::read_to_string(&snap_path).unwrap()).unwrap();
    let (engine, report) = recovery::recover_from(Some(&snapshot), backend()).unwrap();
    println!(
        "session 2: recovered {} instances ({} wal records replayed, {} torn bytes dropped)",
        engine.store.len(),
        report.replayed,
        report.torn_tail_bytes
    );
    assert_eq!(engine.store.len(), 2);
    assert!(report.divergent.is_empty(), "history audit must pass");

    // The recovered engine is durable on the same log and just keeps
    // going.
    let name = engine.repo.type_names().pop().unwrap();
    let third = engine.create_instance(&name).unwrap();
    println!(
        "session 2: continued with {third}, {} instances total",
        engine.store.len()
    );

    std::fs::remove_dir_all(&dir).ok();
}
