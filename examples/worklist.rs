//! Multi-actor worklist: two roles — a clerk and an assessor — drain a
//! shared worklist by claiming their items and submitting **batched**
//! start/complete commands. The engine serves the worklist from its
//! incremental index (command outcomes keep it current; nothing is
//! recomputed per poll), and every transition lands in the monitor's
//! event stream.
//!
//! Run with: `cargo run -p adept-examples --bin worklist`

use adept_engine::{EngineCommand, ProcessEngine, WorkItem};
use adept_model::{CmpOp, Guard, SchemaBuilder, Value, ValueType};

/// An insurance-claim process: clerk registers, assessor decides, clerk
/// settles the guarded outcome, and the role-less archive step is
/// claimable by whoever gets to it first.
fn claim_process() -> adept_model::ProcessSchema {
    let mut b = SchemaBuilder::new("insurance claim");
    let amount = b.data("amount", ValueType::Int);
    let approved = b.data("approved", ValueType::Bool);
    let register = b.activity_with("register claim", |a| a.role = Some("clerk".into()));
    b.write(register, amount);
    let assess = b.activity_with("assess damage", |a| a.role = Some("assessor".into()));
    b.read(assess, amount);
    b.write(assess, approved);
    b.xor_split();
    b.case_when(Guard::new(approved, CmpOp::Eq, Value::Bool(true)));
    b.activity_with("approve payout", |a| a.role = Some("clerk".into()));
    b.case();
    b.activity_with("reject claim", |a| a.role = Some("clerk".into()));
    b.xor_join();
    b.activity("archive");
    b.build().expect("well-formed schema")
}

/// One actor: claims every item its role may take and answers each with a
/// batched start + complete (writing deterministic output values).
struct Actor {
    role: &'static str,
}

impl Actor {
    /// Builds this actor's command batch for one worklist round.
    fn claim(&self, engine: &ProcessEngine, items: &[WorkItem]) -> Vec<EngineCommand> {
        let mut batch = Vec::new();
        for item in items.iter().filter(|w| w.claimable_by(self.role)) {
            let schema = engine
                .store
                .schema_of(&engine.repo, item.instance)
                .expect("schema resolves");
            let writes = schema
                .writes_of(item.node)
                .map(|de| {
                    let value = match schema.data_element(de.data).map(|d| d.ty) {
                        Ok(ValueType::Int) => Value::Int(100 * item.instance.raw() as i64),
                        // Odd claims get approved, even ones rejected.
                        Ok(ValueType::Bool) => Value::Bool(item.instance.raw() % 2 == 1),
                        Ok(ValueType::Float) => Value::Float(0.0),
                        Ok(ValueType::Str) => Value::Str(String::new()),
                        Err(_) => Value::Null,
                    };
                    (de.data, value)
                })
                .collect();
            batch.push(EngineCommand::Start {
                instance: item.instance,
                node: item.node,
            });
            batch.push(EngineCommand::Complete {
                instance: item.instance,
                node: item.node,
                writes,
            });
        }
        batch
    }
}

fn main() {
    let engine = ProcessEngine::new();
    let name = engine.deploy(claim_process()).unwrap();

    // Open six claims in one batch.
    let created = engine.submit_batch(
        (0..6)
            .map(|_| EngineCommand::CreateInstance {
                type_name: name.clone(),
            })
            .collect(),
    );
    let claims: Vec<_> = created.into_iter().map(|r| r.unwrap().instance).collect();
    println!("opened {} claims", claims.len());

    let clerk = Actor { role: "clerk" };
    let assessor = Actor { role: "assessor" };

    // The two actors alternate polls until the shared worklist is empty.
    // Each poll is an index read; each response is ONE batched submission
    // per actor, so a round costs two store passes however many items it
    // clears.
    let mut round = 0;
    loop {
        let items = engine.worklist();
        if items.is_empty() {
            break;
        }
        round += 1;
        // The clerk claims first; the assessor takes what is left (the
        // role-less archive step goes to whoever is first this round).
        let clerk_batch = clerk.claim(&engine, &items);
        let claimed: Vec<(adept_model::InstanceId, adept_model::NodeId)> = clerk_batch
            .iter()
            .filter_map(|c| match c {
                EngineCommand::Start { instance, node } => Some((*instance, *node)),
                _ => None,
            })
            .collect();
        let rest: Vec<WorkItem> = items
            .into_iter()
            .filter(|w| !claimed.contains(&(w.instance, w.node)))
            .collect();
        let assessor_batch = assessor.claim(&engine, &rest);
        let n_clerk = clerk_batch.len() / 2;
        let n_assessor = assessor_batch.len() / 2;
        for res in engine.submit_batch(clerk_batch) {
            res.unwrap();
        }
        for res in engine.submit_batch(assessor_batch) {
            res.unwrap();
        }
        println!("round {round}: clerk did {n_clerk} items, assessor {n_assessor}");
    }

    for id in &claims {
        assert!(engine.is_finished(*id).unwrap());
    }
    println!(
        "\nall claims settled after {round} rounds; {} events recorded, e.g.:",
        engine.monitor.len()
    );
    for (t, e) in engine.monitor.events().iter().take(8) {
        println!("  [{t}] {e}");
    }
}
