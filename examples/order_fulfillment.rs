//! The paper's running example, end to end: Fig. 1's type change ΔT and
//! Fig. 3's migration report for the online-order process — I1 migrates,
//! the ad-hoc modified I2 hits a structural conflict (deadlock-causing
//! cycle), I3 hits a state-related conflict.
//!
//! Run with: `cargo run -p adept-examples --bin order_fulfillment`

use adept_core::MigrationOptions;
use adept_engine::{render_instance_dot, EngineCommand, ProcessEngine};
use adept_simgen::scenarios;

fn main() {
    let engine = ProcessEngine::new();
    let name = engine.deploy(scenarios::order_process()).unwrap();
    let v1 = engine.repo.deployed(&name, 1).unwrap();
    println!("deployed \"{name}\" V1\n");

    // I1: completed "get order" and "collect data".
    let i1 = engine.create_instance(&name).unwrap();
    engine
        .submit(EngineCommand::Drive {
            instance: i1,
            max: Some(2),
        })
        .unwrap();

    // I2: individually modified (sync edge confirm -> compose).
    let i2 = engine.create_instance(&name).unwrap();
    let mut session = engine.begin_change(i2).unwrap();
    session
        .stage(&scenarios::fig1_i2_bias_op(&v1.schema))
        .unwrap();
    session.commit().unwrap();

    // I3: already finished packing.
    let i3 = engine.create_instance(&name).unwrap();
    engine
        .submit(EngineCommand::Drive {
            instance: i3,
            max: None,
        })
        .unwrap();

    // ΔT of Fig. 1 as ONE transaction: addActivity(send questions,
    // compose order, pack goods) + insertSyncEdge(send questions, confirm
    // order) — previewed, then committed atomically with a single
    // verification pass.
    let mut evolution = engine.begin_evolution(&name).unwrap();
    for op in scenarios::fig1_delta_ops(&v1.schema) {
        evolution.stage(&op).unwrap();
    }
    print!("previewing ΔT:\n{}", evolution.preview().unwrap());
    let receipt = evolution.commit().unwrap();
    let (v2, delta) = (receipt.new_version.unwrap(), receipt.delta);
    println!(
        "committed type change to V{v2} (txn #{}): {delta}\n",
        receipt.seq
    );

    // The Fig. 3 migration report.
    let report = engine
        .migrate_all(&name, &MigrationOptions::default(), 1)
        .unwrap();
    println!("{report}");

    // Show I1's adapted state and let everything finish.
    println!(
        "I1 on V2 after migration:\n{}",
        engine.render_instance(i1).unwrap()
    );
    for res in engine.submit_batch(
        [i1, i2, i3]
            .into_iter()
            .map(|id| EngineCommand::Drive {
                instance: id,
                max: None,
            })
            .collect(),
    ) {
        res.unwrap();
    }
    println!("event log:\n{}", engine.monitor.render_log());

    // DOT output of the migrated instance for external rendering.
    let schema = engine.store.schema_of(&engine.repo, i1).unwrap();
    let state = engine.store.get(i1).unwrap().state;
    let dot = render_instance_dot(&schema, &state);
    println!(
        "I1 as DOT ({} bytes) — pipe to graphviz to visualise",
        dot.len()
    );
}
