//! E-health scenario (the paper reports ADEPT2 deployments in e-health):
//! a clinical pathway with an examination loop and a guarded surgery
//! branch; one patient receives an ad-hoc specialist consult; a later
//! guideline update (type change) adds a mandatory lab review for all
//! future and compliant running cases.
//!
//! Run with: `cargo run -p adept-examples --bin clinical_pathway`

use adept_core::{ChangeOp, MigrationOptions, NewActivity};
use adept_engine::{EngineCommand, ProcessEngine};
use adept_simgen::{scenarios, RandomDriver};

fn main() {
    let engine = ProcessEngine::new();
    let name = engine.deploy(scenarios::clinical_pathway()).unwrap();
    let v1 = engine.repo.deployed(&name, 1).unwrap();

    // Admit five patients at different stages.
    let mut patients = Vec::new();
    for k in 0..5u64 {
        let id = engine.create_instance(&name).unwrap();
        let mut driver = RandomDriver::new(k);
        engine
            .submit_with_driver(
                EngineCommand::Drive {
                    instance: id,
                    max: Some(k as usize),
                },
                &mut driver,
            )
            .unwrap();
        patients.push(id);
    }

    // Patient 0 gets an ad-hoc specialist consult before anamnesis — a
    // one-op change session, previewed before committing.
    let admit = v1.schema.node_by_name("admit patient").unwrap().id;
    let anam = v1.schema.node_by_name("anamnesis").unwrap().id;
    let mut session = engine.begin_change(patients[0]).unwrap();
    let staged = session.stage(&ChangeOp::SerialInsert {
        activity: NewActivity::named("specialist consult").with_role("physician"),
        pred: admit,
        succ: anam,
    });
    match staged {
        Ok(_) if session.preview().unwrap().is_committable() => {
            session.commit().unwrap();
            println!("{}: specialist consult inserted ad hoc", patients[0]);
        }
        Ok(_) => {
            session.abort();
            println!("{}: consult not committable, aborted", patients[0]);
        }
        Err(e) => println!("{}: consult rejected ({e})", patients[0]),
    }

    // Guideline update: lab review before the therapy plan, for everyone.
    let therapy = v1.schema.node_by_name("therapy plan").unwrap().id;
    let discharge = v1.schema.node_by_name("discharge").unwrap().id;
    let mut evolution = engine.begin_evolution(&name).unwrap();
    evolution
        .stage(&ChangeOp::SerialInsert {
            activity: NewActivity::named("lab review").with_role("lab"),
            pred: therapy,
            succ: discharge,
        })
        .unwrap();
    evolution.commit().unwrap();
    let report = engine
        .migrate_all(&name, &MigrationOptions::default(), 2)
        .unwrap();
    println!("\n{report}");

    // Treat everyone to discharge.
    for (k, id) in patients.iter().enumerate() {
        let mut driver = RandomDriver::new(1000 + k as u64);
        engine
            .submit_with_driver(
                EngineCommand::Drive {
                    instance: *id,
                    max: Some(300),
                },
                &mut driver,
            )
            .unwrap();
        println!(
            "\n{} final state:\n{}",
            id,
            engine.render_instance(*id).unwrap()
        );
    }
}
