//! Integration test crate for the ADEPT2 reproduction (tests live in
//! `tests/`). The helpers here are the idiomatic entry points the suite
//! drives the engine through: typed commands for execution and change
//! sessions for dynamic change — the deprecated per-verb wrappers are
//! exercised only by the dedicated wrapper-equivalence tests.

use adept_core::ChangeOp;
use adept_engine::{CommandOutcome, EngineCommand, EngineError, ProcessEngine, TxnReceipt};
use adept_model::InstanceId;
use adept_state::Driver;

/// Drives an instance through the command path with the default driver,
/// completing at most `max` activities. Returns the command outcome.
pub fn drive(
    engine: &ProcessEngine,
    id: InstanceId,
    max: Option<usize>,
) -> Result<CommandOutcome, EngineError> {
    engine.submit(EngineCommand::Drive { instance: id, max })
}

/// [`drive`] with a custom driver.
pub fn drive_with(
    engine: &ProcessEngine,
    id: InstanceId,
    driver: &mut dyn Driver,
    max: Option<usize>,
) -> Result<CommandOutcome, EngineError> {
    engine.submit_with_driver(EngineCommand::Drive { instance: id, max }, driver)
}

/// Applies a one-op ad-hoc change through a change session.
pub fn adhoc(
    engine: &ProcessEngine,
    id: InstanceId,
    op: &ChangeOp,
) -> Result<TxnReceipt, EngineError> {
    let mut session = engine.begin_change(id)?;
    session.stage(op)?;
    session.commit()
}

/// Evolves a type by one batch of operations through a change session,
/// returning the new version.
pub fn evolve(
    engine: &ProcessEngine,
    type_name: &str,
    ops: &[ChangeOp],
) -> Result<u32, EngineError> {
    let mut session = engine.begin_evolution(type_name)?;
    for op in ops {
        session.stage(op)?;
    }
    session
        .commit()
        .map(|r| r.new_version.expect("evolution commits produce a version"))
}
