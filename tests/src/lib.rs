//! Integration test crate for the ADEPT2 reproduction (tests live in `tests/`).
