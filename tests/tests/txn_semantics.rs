//! Change-transaction semantics, end to end:
//!
//! * **amortisation** — committing N staged operations performs exactly
//!   ONE full verification pass (asserted via the thread-local pass
//!   counter in `adept-verify`), versus one per op on the deprecated
//!   single-op path;
//! * **atomicity** — a commit whose staged batch fails verification or
//!   compliance leaves instance, repository, bias, state and txn log
//!   bit-identical;
//! * **preview purity** — a dry run mutates nothing observable;
//! * **wrapper equivalence** — the deprecated single-op entry points
//!   produce exactly the same world as one-op transactions;
//! * **durability** — committed transactions land in the persisted log
//!   and survive snapshot/restore.

#![allow(deprecated)] // dedicated wrapper-equivalence tests compare the deprecated
                      // single-op entry points against sessions

use adept_core::{ChangeError, ChangeOp, NewActivity};
use adept_engine::{EngineError, EngineEvent, ProcessEngine};
use adept_model::AccessMode;
use adept_simgen::scenarios;
use adept_storage::{restore_with_txns, snapshot_with_txns, TxnTarget};
use adept_tests::{adhoc, drive, evolve};
use adept_verify::verification_passes;

/// The Fig. 1 order process with a freshly created instance.
fn world() -> (ProcessEngine, String, adept_model::InstanceId) {
    let engine = ProcessEngine::new();
    let name = engine.deploy(scenarios::order_process()).unwrap();
    let id = engine.create_instance(&name).unwrap();
    (engine, name, id)
}

/// Four independent serial inserts along the order process spine.
fn four_ops(schema: &adept_model::ProcessSchema) -> Vec<ChangeOp> {
    let pairs: [(&str, Option<&str>); 4] = [
        ("get order", Some("collect data")),
        ("compose order", Some("pack goods")),
        ("pack goods", None),
        ("deliver goods", None),
    ];
    let mut ops = Vec::new();
    let mut k = 0;
    for (pred, succ) in pairs.iter().map(|(p, s)| (*p, *s)) {
        let p = schema.node_by_name(pred).unwrap().id;
        let s = match succ {
            Some(n) => schema.node_by_name(n).unwrap().id,
            None => match schema.sole_control_successor(p) {
                Some(s) => s,
                None => continue,
            },
        };
        k += 1;
        ops.push(ChangeOp::SerialInsert {
            activity: NewActivity::named(format!("staged{k}")),
            pred: p,
            succ: s,
        });
    }
    ops
}

#[test]
fn committing_n_ops_runs_exactly_one_verification_pass() {
    let (engine, _name, id) = world();
    let v1 = engine.repo.deployed(&_name, 1).unwrap();
    let ops = four_ops(&v1.schema);
    assert!(ops.len() >= 3, "need a real batch");

    let mut session = engine.begin_change(id).unwrap();
    let before = verification_passes();
    for op in &ops {
        session.stage(op).unwrap();
    }
    assert_eq!(verification_passes(), before, "staging never verifies");
    let receipt = session.commit().unwrap();
    assert_eq!(
        verification_passes(),
        before + 1,
        "a commit of {} ops pays exactly one verification pass",
        receipt.ops
    );
    assert_eq!(receipt.ops, ops.len());

    // The deprecated per-op path pays one pass per op for the same batch.
    let (engine2, name2, id2) = world();
    let v1b = engine2.repo.deployed(&name2, 1).unwrap();
    let before = verification_passes();
    for op in four_ops(&v1b.schema) {
        engine2.ad_hoc_change(id2, &op).unwrap();
    }
    assert_eq!(
        verification_passes(),
        before + ops.len() as u64,
        "per-op application verifies once per op"
    );
}

#[test]
fn evolution_commit_runs_exactly_one_verification_pass() {
    let (engine, name, _id) = world();
    let v1 = engine.repo.deployed(&name, 1).unwrap();
    let mut evolution = engine.begin_evolution(&name).unwrap();
    let before = verification_passes();
    for op in four_ops(&v1.schema) {
        evolution.stage(&op).unwrap();
    }
    assert_eq!(verification_passes(), before);
    let receipt = evolution.commit().unwrap();
    assert_eq!(verification_passes(), before + 1);
    assert_eq!(receipt.new_version, Some(2));
    assert_eq!(engine.repo.latest_version(&name), Some(2));
    // The recorded delta replays on migration like an evolve() delta.
    let report = engine.migrate_all(&name, &Default::default(), 1).unwrap();
    assert_eq!(report.migrated(), 1, "{report}");
}

/// Builds a schema where a staged batch passes every per-op structural
/// precondition but the composed overlay fails full verification: the
/// inserted activity mandatorily reads a data element that is only
/// written downstream.
fn deferred_failure_world() -> (ProcessEngine, String, adept_model::InstanceId) {
    let mut b = adept_model::SchemaBuilder::new("deferred");
    let d = b.data("late", adept_model::ValueType::Int);
    b.activity("a");
    let c = b.activity("c");
    b.write(c, d);
    let engine = ProcessEngine::new();
    let name = engine.deploy(b.build().unwrap()).unwrap();
    let id = engine.create_instance(&name).unwrap();
    (engine, name, id)
}

#[test]
fn failed_commit_is_observably_side_effect_free() {
    let (engine, name, id) = deferred_failure_world();
    let v1 = engine.repo.deployed(&name, 1).unwrap();
    let a = v1.schema.node_by_name("a").unwrap().id;
    let c = v1.schema.node_by_name("c").unwrap().id;
    let d = v1.schema.data_by_name("late").unwrap().id;

    let inst_before = engine.store.get(id).unwrap();
    let schema_before = engine.store.schema_of(&engine.repo, id).unwrap();

    let mut session = engine.begin_change(id).unwrap();
    // Op 1 is fine on its own; op 2 makes the batch fail the (single,
    // commit-time) verification pass.
    let x = session
        .stage(&ChangeOp::SerialInsert {
            activity: NewActivity::named("x"),
            pred: a,
            succ: c,
        })
        .unwrap()
        .inserted_activity()
        .unwrap();
    session
        .stage(&ChangeOp::AddDataEdge {
            node: x,
            data: d,
            mode: AccessMode::Read,
            optional: false,
        })
        .unwrap();
    let err = session.commit().unwrap_err();
    assert!(
        matches!(
            err,
            EngineError::Change(ChangeError::PostconditionViolated(_))
        ),
        "{err}"
    );

    // Bit-identical world: bias, state, version, resolved schema, log.
    let inst_after = engine.store.get(id).unwrap();
    assert_eq!(inst_after.bias, inst_before.bias);
    assert_eq!(inst_after.state, inst_before.state);
    assert_eq!(inst_after.version, inst_before.version);
    let schema_after = engine.store.schema_of(&engine.repo, id).unwrap();
    assert_eq!(*schema_after, *schema_before);
    assert!(engine.txn_log.is_empty(), "failed commits are not logged");
    assert_eq!(engine.repo.latest_version(&name), Some(1));

    // The instance still executes to completion.
    drive(&engine, id, None).unwrap();
    assert!(engine.is_finished(id).unwrap());
}

#[test]
fn failed_evolution_commit_leaves_repository_bit_identical() {
    let (engine, name, _id) = deferred_failure_world();
    let v1 = engine.repo.deployed(&name, 1).unwrap();
    let a = v1.schema.node_by_name("a").unwrap().id;
    let c = v1.schema.node_by_name("c").unwrap().id;
    let d = v1.schema.data_by_name("late").unwrap().id;

    let pt_before = engine.repo.process_type(&name).unwrap();
    let mut evolution = engine.begin_evolution(&name).unwrap();
    let x = evolution
        .stage(&ChangeOp::SerialInsert {
            activity: NewActivity::named("x"),
            pred: a,
            succ: c,
        })
        .unwrap()
        .inserted_activity()
        .unwrap();
    evolution
        .stage(&ChangeOp::AddDataEdge {
            node: x,
            data: d,
            mode: AccessMode::Read,
            optional: false,
        })
        .unwrap();
    assert!(evolution.commit().is_err());
    assert_eq!(
        engine.repo.latest_version(&name),
        Some(1),
        "no partial version"
    );
    assert_eq!(engine.repo.process_type(&name).unwrap(), pt_before);
    assert!(engine.txn_log.is_empty());
}

#[test]
fn preview_mutates_nothing_observable() {
    let (engine, name, id) = world();
    let v1 = engine.repo.deployed(&name, 1).unwrap();
    drive(&engine, id, Some(1)).unwrap();

    let inst_before = engine.store.get(id).unwrap();
    let events_before = engine.monitor.len();

    let mut session = engine.begin_change(id).unwrap();
    for op in four_ops(&v1.schema) {
        session.stage(&op).unwrap();
    }
    let p1 = session.preview().unwrap();
    let p2 = session.preview().unwrap();
    assert!(p1.is_committable(), "{p1}");
    assert_eq!(p1.per_op.len(), p2.per_op.len(), "previewing is repeatable");

    // Nothing observable moved: instance, repository, monitor, txn log.
    let inst_after = engine.store.get(id).unwrap();
    assert_eq!(inst_after.bias, inst_before.bias);
    assert_eq!(inst_after.state, inst_before.state);
    assert_eq!(engine.repo.latest_version(&name), Some(1));
    assert_eq!(
        engine.monitor.len(),
        events_before,
        "preview records no events"
    );
    assert!(engine.txn_log.is_empty());

    // Aborting after previewing is equally free (only the abort event).
    session.abort();
    assert_eq!(engine.monitor.len(), events_before + 1);
    assert!(matches!(
        engine.monitor.events().last().unwrap().1,
        EngineEvent::TxnAborted { .. }
    ));
    let inst_final = engine.store.get(id).unwrap();
    assert_eq!(inst_final.bias, inst_before.bias);
    assert_eq!(inst_final.state, inst_before.state);
}

#[test]
fn preview_reports_compliance_conflicts_per_op() {
    let (engine, name, id) = world();
    let v1 = engine.repo.deployed(&name, 1).unwrap();
    drive(&engine, id, None).unwrap(); // finished
    let get = v1.schema.node_by_name("get order").unwrap().id;
    let collect = v1.schema.node_by_name("collect data").unwrap().id;

    let mut session = engine.begin_change(id).unwrap();
    session
        .stage(&ChangeOp::SerialInsert {
            activity: NewActivity::named("too late"),
            pred: get,
            succ: collect,
        })
        .unwrap();
    let p = session.preview().unwrap();
    assert!(!p.is_committable());
    assert!(p.verification.is_correct(), "structurally fine");
    assert!(!p.compliance.as_ref().unwrap().is_compliant());
    assert_eq!(p.per_op.len(), 1);
    assert!(!p.per_op[0].compliance.as_ref().unwrap().is_compliant());

    // And the commit is rejected with the same conflict, side-effect free.
    let err = session.commit().unwrap_err();
    assert!(matches!(
        err,
        EngineError::Change(ChangeError::StatePrecondition { .. })
    ));
    assert!(!engine.store.get(id).unwrap().is_biased());
}

#[test]
fn single_op_wrappers_are_equivalent_to_one_op_transactions() {
    // Same deviation through both surfaces -> identical observable world.
    let (e1, n1, i1) = world();
    let (e2, n2, i2) = world();
    let op = |schema: &adept_model::ProcessSchema| ChangeOp::SerialInsert {
        activity: NewActivity::named("check customer"),
        pred: schema.node_by_name("get order").unwrap().id,
        succ: schema.node_by_name("collect data").unwrap().id,
    };

    let v1 = e1.repo.deployed(&n1, 1).unwrap();
    e1.ad_hoc_change(i1, &op(&v1.schema)).unwrap();

    let v2 = e2.repo.deployed(&n2, 1).unwrap();
    let mut session = e2.begin_change(i2).unwrap();
    session.stage(&op(&v2.schema)).unwrap();
    session.commit().unwrap();

    let a = e1.store.get(i1).unwrap();
    let b = e2.store.get(i2).unwrap();
    assert_eq!(a.bias, b.bias);
    assert_eq!(a.state, b.state);
    assert_eq!(a.version, b.version);
    assert_eq!(
        *e1.store.schema_of(&e1.repo, i1).unwrap(),
        *e2.store.schema_of(&e2.repo, i2).unwrap()
    );
    // The wrapper goes through the txn machinery, so both worlds logged
    // exactly one transaction.
    assert_eq!(e1.txn_log.len(), 1);
    assert_eq!(e2.txn_log.len(), 1);

    // Evolution wrappers line up the same way.
    let ops1 = scenarios::fig1_delta_ops(&v1.schema);
    let (va, da) = e1.evolve_type(&n1, &ops1).unwrap();
    let mut ev = e2.begin_evolution(&n2).unwrap();
    for op in scenarios::fig1_delta_ops(&v2.schema) {
        ev.stage(&op).unwrap();
    }
    let receipt = ev.commit().unwrap();
    assert_eq!(Some(va), receipt.new_version);
    assert_eq!(da, receipt.delta);
    assert_eq!(
        e1.repo.deployed(&n1, va).unwrap().schema,
        e2.repo.deployed(&n2, va).unwrap().schema
    );
}

#[test]
fn concurrent_instance_change_is_rejected_at_commit() {
    let (engine, name, id) = world();
    let v1 = engine.repo.deployed(&name, 1).unwrap();
    let get = v1.schema.node_by_name("get order").unwrap().id;
    let collect = v1.schema.node_by_name("collect data").unwrap().id;

    let mut session = engine.begin_change(id).unwrap();
    session
        .stage(&ChangeOp::SerialInsert {
            activity: NewActivity::named("mine"),
            pred: get,
            succ: collect,
        })
        .unwrap();

    // Another actor commits first.
    adhoc(
        &engine,
        id,
        &ChangeOp::InsertSyncEdge {
            from: v1.schema.node_by_name("confirm order").unwrap().id,
            to: v1.schema.node_by_name("compose order").unwrap().id,
        },
    )
    .unwrap();

    let err = session.commit().unwrap_err();
    assert!(
        matches!(&err, EngineError::Change(ChangeError::Precondition(m)) if m.contains("concurrent")),
        "{err}"
    );
    // Only the winner's change is visible.
    let inst = engine.store.get(id).unwrap();
    assert_eq!(inst.bias.len(), 1);
    assert_eq!(engine.txn_log.len(), 1);
}

#[test]
fn concurrent_evolution_is_rejected_at_commit() {
    let (engine, name, _id) = world();
    let v1 = engine.repo.deployed(&name, 1).unwrap();

    let mut loser = engine.begin_evolution(&name).unwrap();
    loser.stage(&scenarios::fig1_insert_op(&v1.schema)).unwrap();

    // The winner commits a different evolution in between.
    evolve(&engine, &name, &[scenarios::fig1_insert_op(&v1.schema)]).unwrap();

    let err = loser.commit().unwrap_err();
    assert!(
        matches!(&err, EngineError::Change(ChangeError::Precondition(m)) if m.contains("concurrent")),
        "{err}"
    );
    assert_eq!(
        engine.repo.latest_version(&name),
        Some(2),
        "only the winner landed"
    );
}

#[test]
fn unstage_last_rolls_back_staged_work() {
    let (engine, name, id) = world();
    let v1 = engine.repo.deployed(&name, 1).unwrap();
    let get = v1.schema.node_by_name("get order").unwrap().id;
    let collect = v1.schema.node_by_name("collect data").unwrap().id;

    let mut session = engine.begin_change(id).unwrap();
    session
        .stage(&ChangeOp::SerialInsert {
            activity: NewActivity::named("keep"),
            pred: get,
            succ: collect,
        })
        .unwrap();
    let keep = session.staged()[0].rec.inserted_activity().unwrap();
    session
        .stage(&ChangeOp::SerialInsert {
            activity: NewActivity::named("discard"),
            pred: keep,
            succ: collect,
        })
        .unwrap();
    assert_eq!(session.len(), 2);
    session.unstage_last().unwrap();
    assert_eq!(session.len(), 1);

    let receipt = session.commit().unwrap();
    assert_eq!(receipt.ops, 1);
    let schema = engine.store.schema_of(&engine.repo, id).unwrap();
    assert!(schema.node_by_name("keep").is_some());
    assert!(schema.node_by_name("discard").is_none());
    drive(&engine, id, None).unwrap();
    assert!(engine.is_finished(id).unwrap());
}

#[test]
fn txn_log_records_commits_and_survives_persistence() {
    let (engine, name, id) = world();
    let v1 = engine.repo.deployed(&name, 1).unwrap();
    let get = v1.schema.node_by_name("get order").unwrap().id;
    let collect = v1.schema.node_by_name("collect data").unwrap().id;

    let mut session = engine.begin_change(id).unwrap();
    session
        .stage(&ChangeOp::SerialInsert {
            activity: NewActivity::named("audit"),
            pred: get,
            succ: collect,
        })
        .unwrap();
    session.commit().unwrap();
    evolve(&engine, &name, &[scenarios::fig1_insert_op(&v1.schema)]).unwrap();

    let records = engine.txn_log.records();
    assert_eq!(records.len(), 2);
    assert_eq!(records[0].seq, 1);
    assert!(matches!(records[0].target, TxnTarget::Instance(i) if i == id));
    assert_eq!(records[0].ops.len(), 1);
    assert!(records[0].inverses[0].is_some(), "insert is invertible");
    assert!(
        matches!(&records[1].target, TxnTarget::Type { new_version: 2, .. }),
        "{:?}",
        records[1].target
    );

    // Snapshot + restore keeps the log (and everything else).
    let snap = snapshot_with_txns(&engine.repo, &engine.store, &engine.txn_log);
    let json = adept_storage::to_json(&snap).unwrap();
    let parsed = adept_storage::from_json(&json).unwrap();
    assert_eq!(parsed, snap);
    let (repo2, store2, log2) = restore_with_txns(&parsed).unwrap();
    let engine2 = ProcessEngine::from_parts_with_log(repo2, store2, log2);
    assert_eq!(engine2.txn_log.records(), records);
    // The restored engine keeps transacting with continuing sequence.
    let id2 = engine2.create_instance(&name).unwrap();
    let mut s = engine2.begin_change(id2).unwrap();
    let v2 = engine2.repo.deployed(&name, 2).unwrap();
    s.stage(&ChangeOp::SerialInsert {
        activity: NewActivity::named("again"),
        pred: v2.schema.node_by_name("get order").unwrap().id,
        succ: v2.schema.node_by_name("collect data").unwrap().id,
    })
    .unwrap();
    let receipt = s.commit().unwrap();
    assert_eq!(receipt.seq, 3, "sequence continues after restore");
}

#[test]
fn committed_txn_events_reach_the_monitor() {
    let (engine, name, id) = world();
    let v1 = engine.repo.deployed(&name, 1).unwrap();
    let mut session = engine.begin_change(id).unwrap();
    for op in four_ops(&v1.schema) {
        session.stage(&op).unwrap();
    }
    session.commit().unwrap();
    let events = engine.monitor.events();
    assert!(events
        .iter()
        .any(|(_, e)| matches!(e, EngineEvent::TxnCommitted { ops, .. } if *ops >= 3)));
    // The committed instance still runs to completion with all staged
    // activities executed.
    drive(&engine, id, None).unwrap();
    assert!(engine.is_finished(id).unwrap());
    let schema = engine.store.schema_of(&engine.repo, id).unwrap();
    assert!(schema.node_by_name("staged1").is_some());
}

#[test]
fn undo_writes_its_own_txn_record() {
    let (engine, name, id) = world();
    let v1 = engine.repo.deployed(&name, 1).unwrap();
    let op = four_ops(&v1.schema).remove(0);
    let mut session = engine.begin_change(id).unwrap();
    session.stage(&op).unwrap();
    session.commit().unwrap();
    assert_eq!(engine.txn_log.len(), 1);

    engine.undo_ad_hoc_change(id).unwrap();
    let records = engine.txn_log.records();
    assert_eq!(records.len(), 2, "the undo is a logged transaction");
    let undo = &records[1];
    assert_eq!(undo.seq, 2);
    assert_eq!(undo.target, TxnTarget::Instance(id));
    assert_eq!(undo.ops.len(), 1);
    // Replaying the log yields the real bias: op then its inverse => empty.
    assert_eq!(undo.inverses[0].as_ref(), Some(&op));
    assert!(!engine.store.get(id).unwrap().is_biased());
}

#[test]
fn preview_reports_concurrent_modification() {
    let (engine, name, id) = world();
    let v1 = engine.repo.deployed(&name, 1).unwrap();
    let op = four_ops(&v1.schema).remove(0);

    let stale = engine.begin_change(id).unwrap();
    // A second session commits while the first is still open.
    let mut racer = engine.begin_change(id).unwrap();
    racer.stage(&op).unwrap();
    racer.commit().unwrap();

    // The stale session's dry run must surface the conflict, exactly as
    // its commit would — not return verdicts mixing old schema with the
    // new marking.
    let err = stale.preview().unwrap_err();
    assert!(
        err.to_string().contains("concurrent change"),
        "unexpected error: {err}"
    );
}

#[test]
fn evolution_preview_reports_lost_base_version_race() {
    let (engine, name, _id) = world();
    let v1 = engine.repo.deployed(&name, 1).unwrap();
    let op = four_ops(&v1.schema).remove(0);

    let stale = engine.begin_evolution(&name).unwrap();
    let mut racer = engine.begin_evolution(&name).unwrap();
    racer.stage(&op).unwrap();
    racer.commit().unwrap();

    let err = stale.preview().unwrap_err();
    assert!(
        err.to_string().contains("concurrent evolution"),
        "unexpected error: {err}"
    );
}
