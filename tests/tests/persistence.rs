//! Persistence integration: snapshot a live engine (multiple versions,
//! biased and finished instances), restore, and keep working — including a
//! full migration round in the restored world.

use adept_core::MigrationOptions;
use adept_engine::ProcessEngine;
use adept_simgen::scenarios;
use adept_storage::persist::{from_json, restore, snapshot, to_json};
use adept_tests::{adhoc, drive, drive_with, evolve};

#[test]
fn snapshot_roundtrip_preserves_a_whole_world() {
    let engine = ProcessEngine::new();
    let name = engine.deploy(scenarios::order_process()).unwrap();
    let v1 = engine.repo.deployed(&name, 1).unwrap();
    let i1 = engine.create_instance(&name).unwrap();
    drive(&engine, i1, Some(2)).unwrap();
    let i2 = engine.create_instance(&name).unwrap();
    adhoc(&engine, i2, &scenarios::fig1_i2_bias_op(&v1.schema)).unwrap();
    let i3 = engine.create_instance(&name).unwrap();
    drive(&engine, i3, None).unwrap();
    evolve(&engine, &name, &scenarios::fig1_delta_ops(&v1.schema)).unwrap();

    let snap = engine.snapshot();
    let json = to_json(&snap).unwrap();
    assert!(json.contains("online order"));
    let parsed = from_json(&json).unwrap();
    assert_eq!(parsed, snap);

    let engine2 = ProcessEngine::from_snapshot(&parsed).unwrap();
    assert_eq!(engine2.repo.latest_version(&name), Some(2));
    assert_eq!(engine2.store.len(), 3);
    let inst2 = engine2.store.get(i2).unwrap();
    assert!(inst2.is_biased());
    assert_eq!(inst2.state, engine.store.get(i2).unwrap().state);

    // The change history survives the round-trip: the ad-hoc change and
    // the evolution are still in the log, and new commits continue the
    // sequence instead of reusing numbers.
    assert_eq!(engine2.txn_log.records(), engine.txn_log.records());
    let last_seq = engine2.txn_log.records().last().unwrap().seq;
    assert!(last_seq >= 2);

    // The restored biased instance materialises correctly and the restored
    // world supports a full migration round with the Fig. 1 verdicts.
    let overlay = engine2.store.schema_of(&engine2.repo, i2).unwrap();
    assert_eq!(overlay.sync_edges().count(), 1);
    let report = engine2
        .migrate_all(&name, &MigrationOptions::default(), 1)
        .unwrap();
    assert_eq!(report.total(), 3);
    assert_eq!(report.migrated(), 1, "{report}");
    drive(&engine2, i1, None).unwrap();
    assert!(engine2.is_finished(i1).unwrap());
}

#[test]
fn restored_engine_accepts_new_work() {
    let engine = ProcessEngine::new();
    let name = engine.deploy(scenarios::clinical_pathway()).unwrap();
    let id = engine.create_instance(&name).unwrap();
    drive(&engine, id, Some(1)).unwrap();

    let snap = snapshot(&engine.repo, &engine.store);
    let (repo2, store2) = restore(&snap).unwrap();
    let engine2 = ProcessEngine::from_parts(repo2, store2);

    // New instances, new ad-hoc changes, full execution.
    let fresh = engine2.create_instance(&name).unwrap();
    assert!(fresh.raw() > id.raw());
    let mut driver = adept_simgen::RandomDriver::new(5);
    drive_with(&engine2, id, &mut driver, Some(200)).unwrap();
    drive_with(&engine2, fresh, &mut driver, Some(200)).unwrap();
    assert!(engine2.is_finished(id).unwrap());
    assert!(engine2.is_finished(fresh).unwrap());
}
