//! The segmented monitor event log:
//!
//! * equivalence — the per-shard ring segments merged on read are
//!   element-identical (sequence + payload) to a reference single-vec
//!   log, under single-threaded lifecycles and concurrent recorders;
//! * cursor streaming — draining an [`EventCursor`] incrementally
//!   reproduces exactly the merged snapshot, gap-free;
//! * retention — eviction is bounded and explicit: a cursor behind the
//!   watermark gets an [`EventLag`] error, never a silent gap, and
//!   recovery's history audit does not depend on evicted events.

use adept_engine::{recovery, EngineEvent, Monitor, ProcessEngine};
use adept_model::InstanceId;
use adept_simgen::RandomDriver;
use adept_storage::MemoryBackend;
use adept_tests::{adhoc, drive_with, evolve};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn ev(i: u64) -> EngineEvent {
    EngineEvent::InstanceFinished {
        instance: InstanceId(i),
    }
}

/// Concurrent recorders on the segmented log vs the reference single-vec
/// log: each thread keeps its own `(seq, payload)` pairs as `record`
/// hands them out; the union of those vecs IS the reference log (what
/// one global `RwLock<Vec>` would have accumulated). Merged-on-read must
/// be element-identical to it.
#[test]
fn segmented_log_matches_reference_vec_under_concurrent_recorders() {
    const THREADS: u64 = 4;
    const EACH: u64 = 250;
    let m = Monitor::new();
    let mut reference: Vec<(u64, EngineEvent)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let m = &m;
                s.spawn(move || {
                    let mut mine = Vec::new();
                    for k in 0..EACH {
                        let e = ev(t * 10_000 + k);
                        let seq = m.record(e.clone());
                        mine.push((seq, e));
                    }
                    mine
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    reference.sort_by_key(|(t, _)| *t);
    let total = THREADS * EACH;
    assert_eq!(m.recorded(), total);
    // Sequences are exactly 0..total — the atomic clock never skips.
    let seqs: Vec<u64> = reference.iter().map(|(t, _)| *t).collect();
    assert_eq!(seqs, (0..total).collect::<Vec<u64>>());
    // Element-identical: same sequence, same payload, same order.
    assert_eq!(m.events(), reference);
}

/// `record_all` reserves one contiguous sequence block per batch, so a
/// batch's events never interleave with a concurrent recorder's.
#[test]
fn batched_records_stay_contiguous() {
    let m = Monitor::new();
    m.record_all((0..5).map(ev));
    m.record(ev(100));
    m.record_all((5..9).map(ev));
    let events = m.events();
    let seqs: Vec<u64> = events.iter().map(|(t, _)| *t).collect();
    assert_eq!(seqs, (0..10).collect::<Vec<u64>>());
    // Payload order within each batch is the iteration order.
    assert_eq!(events[0].1, ev(0));
    assert_eq!(events[4].1, ev(4));
    assert_eq!(events[5].1, ev(100));
    assert_eq!(events[9].1, ev(8));
}

/// A cursor behind the eviction watermark errs explicitly; at or past
/// the watermark it reads the exact retained window.
#[test]
fn lagged_cursor_is_an_explicit_error_not_a_silent_gap() {
    let m = Monitor::new();
    m.set_retention(16);
    for i in 0..100u64 {
        m.record(ev(i));
    }
    let oldest = m.oldest_retained();
    assert!(oldest > 0, "eviction must have happened");
    assert!(m.len() <= 16);

    let err = m.events_since(oldest - 1).unwrap_err();
    assert_eq!(err.oldest, oldest);
    let batch = m.events_since(oldest).unwrap();
    assert_eq!(batch.next, m.recorded());
    // The batch is contiguous: no sequence skipped.
    for (k, (t, _)) in batch.events.iter().enumerate() {
        assert_eq!(*t, oldest + k as u64);
    }

    // A stale cursor resyncs past the gap and then reads cleanly.
    let mut c = m.subscribe_from(0);
    assert!(c.poll(&m).is_err());
    assert_eq!(c.position(), 0, "a failed poll must not advance");
    let skipped = c.resync(&m);
    assert_eq!(skipped, oldest);
    assert_eq!(c.poll(&m).unwrap().len(), batch.events.len());
}

/// Recovery's history audit reads each instance's own execution history,
/// not the monitor's bounded ring — evicting (almost) the whole event
/// log must leave recovery byte-exact and fully audited.
#[test]
fn retention_eviction_does_not_weaken_recovery_audit() {
    let medium = MemoryBackend::new();
    let engine = ProcessEngine::with_wal(Box::new(medium.clone())).unwrap();
    // Retain almost nothing: every shard ring holds one event.
    engine.monitor.set_retention(1);
    let name = engine
        .deploy(adept_simgen::scenarios::order_process())
        .unwrap();
    for k in 0..6u64 {
        let id = engine.create_instance(&name).unwrap();
        let mut driver = RandomDriver::new(k);
        drive_with(&engine, id, &mut driver, Some(3)).unwrap();
    }
    assert!(
        engine.monitor.recorded() > engine.monitor.len() as u64,
        "the workload must actually evict events"
    );
    let expected = adept_storage::to_json(&engine.snapshot()).unwrap();
    drop(engine);

    let (rec, report) = recovery::recover(Box::new(medium)).unwrap();
    assert_eq!(report.divergent, Vec::<InstanceId>::new());
    assert_eq!(report.audited, rec.store.len());
    assert_eq!(adept_storage::to_json(&rec.snapshot()).unwrap(), expected);
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 16,
        ..ProptestConfig::default()
    })]

    /// Over generated simgen lifecycles, draining a cursor from 0 in
    /// arbitrary-sized polls reproduces exactly the merged-on-read log —
    /// same sequences (contiguous from 0), same payloads.
    #[test]
    fn cursor_replay_equals_merged_log_on_generated_lifecycles(seed in 0u64..10_000) {
        let schema = adept_simgen::generate_schema(&adept_simgen::GenParams::sized(12), seed);
        let engine = ProcessEngine::new();
        let name = engine.deploy(schema).unwrap();
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xe5e5);
        let mut cursor = engine.monitor.subscribe_from(0);
        let mut streamed: Vec<(u64, EngineEvent)> = Vec::new();

        let ids: Vec<_> = (0..4).map(|_| engine.create_instance(&name).unwrap()).collect();
        streamed.extend(cursor.poll(&engine.monitor).unwrap());

        for id in &ids {
            let mut driver = RandomDriver::new(seed ^ id.raw());
            let steps = rng.gen_range(0..5);
            drive_with(&engine, *id, &mut driver, Some(steps)).unwrap();
            // Poll mid-stream at random — partial drains must compose.
            if rng.gen_bool(0.5) {
                streamed.extend(cursor.poll(&engine.monitor).unwrap());
            }
        }

        // A change attempt and an evolution add change/migration events.
        let target = ids[rng.gen_range(0..ids.len())];
        let current = engine.store.schema_of(&engine.repo, target).unwrap();
        for kind in adept_simgen::ALL_OP_KINDS {
            if let Some(op) = adept_simgen::changegen::propose(&current, kind, &mut rng, "p") {
                let _ = adhoc(&engine, target, &op);
                break;
            }
        }
        let latest = engine.repo.deployed(&name, 1).unwrap();
        if let Some(op) = adept_simgen::changegen::propose(
            &latest.schema,
            adept_simgen::OpKind::SerialInsert,
            &mut rng,
            "evo",
        ) {
            if evolve(&engine, &name, &[op]).is_ok() {
                engine.migrate_all(&name, &Default::default(), 1).unwrap();
            }
        }
        streamed.extend(cursor.poll(&engine.monitor).unwrap());
        for id in &ids {
            let mut driver = RandomDriver::new(seed ^ (id.raw() << 8));
            let _ = drive_with(&engine, *id, &mut driver, Some(400));
        }
        streamed.extend(cursor.poll(&engine.monitor).unwrap());

        let merged = engine.monitor.events();
        prop_assert_eq!(&streamed, &merged, "cursor stream != merged log (seed {})", seed);
        let seqs: Vec<u64> = merged.iter().map(|(t, _)| *t).collect();
        let expected: Vec<u64> = (0..engine.monitor.recorded()).collect();
        prop_assert_eq!(seqs, expected, "sequences must be contiguous from 0");
    }
}
