//! Adaptation-loop stress: an exception-heavy population (>2k instances
//! over 8 generated types) is repaired by a multi-threaded
//! [`AdaptationLoop`] while concurrent `submit_batch` traffic and a
//! `migrate_all` sweep run against the same engine.
//!
//! Invariants checked at the end:
//! * every committed recovery passed preview (by construction — the
//!   trail is cross-checked against the loop's report);
//! * no instance was adapted twice for one deviation (committed
//!   `(instance, deviation)` pairs are unique);
//! * unrecoverable instances were escalated onto the supervisor's
//!   worklist;
//! * every instance finishes (escalated ones once the "supervisor" —
//!   here: the driver — takes over) and passes `Execution::audit`.

use adept_adapt::{
    AdaptationConfig, AdaptationLoop, CompensateOnFailure, EscalateToWorklist, RetryThenSkip,
};
use adept_core::MigrationOptions;
use adept_engine::{EngineCommand, EngineEvent, FailureKind, ProcessEngine};
use adept_model::{InstanceId, NodeId};
use adept_simgen::{
    exception_scenario, exception_schema, flaky_nodes, ExceptionParams, GenParams, RandomDriver,
};
use adept_state::{Execution, NodeState};
use adept_tests::{drive_with, evolve};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};

/// One population entry: an instance plus its type's flaky-node budgets.
type FlakyInstance = (InstanceId, Vec<(NodeId, u32)>);

const TYPES: usize = 8;
const PER_TYPE: usize = 256;
const HARD: usize = 16;
const ROUNDS: usize = 8;

fn finished(engine: &ProcessEngine, id: InstanceId) -> bool {
    let Ok((schema, blocks)) = engine.materialized(id) else {
        return false;
    };
    let Some(inst) = engine.store.get(id) else {
        return false;
    };
    Execution::with_blocks_ref(&schema, &blocks).is_finished(&inst.state)
}

/// One injector pass over one instance: fail flaky activities while
/// their budget lasts, otherwise push the instance forward.
fn inject(
    engine: &ProcessEngine,
    id: InstanceId,
    flaky: &[(NodeId, u32)],
    budgets: &mut BTreeMap<NodeId, u32>,
    seed: u64,
) {
    let Some(inst) = engine.store.get(id) else {
        return;
    };
    for (node, _) in flaky {
        let left = budgets.get(node).copied().unwrap_or(0);
        if left == 0 {
            continue;
        }
        match inst.state.marking.node(*node) {
            NodeState::Activated => {
                // Start it so it can fail; errors (concurrent adaptation,
                // node deleted) are tolerated.
                let _ = engine.submit(EngineCommand::Start {
                    instance: id,
                    node: *node,
                });
            }
            NodeState::Running
                if engine
                    .submit(EngineCommand::FailActivity {
                        instance: id,
                        node: *node,
                        reason: "injected exception".into(),
                    })
                    .is_ok() =>
            {
                budgets.insert(*node, left - 1);
            }
            _ => {}
        }
    }
    let mut driver = RandomDriver::new(seed ^ id.raw());
    let _ = drive_with(engine, id, &mut driver, Some(2));
}

#[test]
fn exception_heavy_population_is_repaired_under_concurrent_churn() {
    let engine = ProcessEngine::new();
    engine.monitor.set_retention(1_000_000);

    // 8 exception-heavy generated types, 256 instances each.
    let params = ExceptionParams {
        base: GenParams::sized(6),
        ..ExceptionParams::default()
    };
    let mut type_names = Vec::new();
    let mut population: Vec<FlakyInstance> = Vec::new();
    for t in 0..TYPES {
        let schema = exception_schema(&params, 1000 + t as u64);
        let flaky = flaky_nodes(&schema);
        let name = engine.deploy(schema).unwrap();
        for _ in 0..PER_TYPE {
            let id = engine.create_instance(&name).unwrap();
            population.push((id, flaky.clone()));
        }
        type_names.push(name);
    }
    // Plus a deterministic unrecoverable cohort: unskippable flaky step,
    // failure budget beyond the retry budget.
    let mut hard_schema = exception_scenario();
    hard_schema.name = "hard order".into();
    let hp = hard_schema.node_by_name("process").unwrap().id;
    hard_schema.node_mut(hp).unwrap().attrs.skippable = false;
    let hard_name = engine.deploy(hard_schema).unwrap();
    let hard_ids: Vec<InstanceId> = (0..HARD)
        .map(|_| engine.create_instance(&hard_name).unwrap())
        .collect();
    assert!(population.len() + hard_ids.len() >= 2000);

    let mut looper = AdaptationLoop::new(
        &engine,
        AdaptationConfig {
            threads: 4,
            max_in_flight: 128,
            decision_deadline: 30,
            ..AdaptationConfig::default()
        },
    )
    .with_policy(RetryThenSkip::default())
    .with_policy(CompensateOnFailure)
    .with_policy(EscalateToWorklist::new("supervisor"));

    let workers_done = AtomicUsize::new(0);
    let halves: Vec<&[FlakyInstance]> = population.chunks(population.len().div_ceil(2)).collect();
    let workers = halves.len() + 1;
    crossbeam::scope(|scope| {
        // Injector threads: fail flaky work, push everything forward.
        let injectors: Vec<_> = halves
            .iter()
            .enumerate()
            .map(|(w, part)| {
                let engine = &engine;
                let workers_done = &workers_done;
                scope.spawn(move |_| {
                    let mut budgets: Vec<BTreeMap<NodeId, u32>> = part
                        .iter()
                        .map(|(_, flaky)| flaky.iter().copied().collect())
                        .collect();
                    for round in 0..ROUNDS {
                        for (k, (id, flaky)) in part.iter().enumerate() {
                            inject(
                                engine,
                                *id,
                                flaky,
                                &mut budgets[k],
                                ((w as u64) << 32) | round as u64,
                            );
                        }
                    }
                    workers_done.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        // Churn thread: evolve + migrate one type mid-flight, create and
        // drive extra traffic in batches, and synthesize worklist
        // starvation for two fresh instances.
        let churn = {
            let engine = &engine;
            let name = type_names[0].clone();
            let workers_done = &workers_done;
            scope.spawn(move |_| {
                let extra: Vec<InstanceId> = engine
                    .submit_batch(vec![
                        EngineCommand::CreateInstance {
                            type_name: name.clone()
                        };
                        32
                    ])
                    .into_iter()
                    .map(|r| r.unwrap().instance)
                    .collect();
                // Starve two of them: repeated resolution failures are
                // the loop's starvation signal (the engine itself
                // reports each real failure only once).
                for id in extra.iter().take(2) {
                    for _ in 0..2 {
                        engine
                            .monitor
                            .record(EngineEvent::WorklistResolutionFailed {
                                instance: *id,
                                kind: FailureKind::Other,
                                reason: "no eligible actor".into(),
                            });
                    }
                }
                let base = engine.repo.deployed(&name, 1).unwrap().schema.clone();
                let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(7);
                if let Some(op) = adept_simgen::changegen::propose(
                    &base,
                    adept_simgen::OpKind::SerialInsert,
                    &mut rng,
                    "evo",
                ) {
                    if evolve(engine, &name, &[op]).is_ok() {
                        engine
                            .migrate_all(&name, &MigrationOptions::default(), 2)
                            .unwrap();
                    }
                }
                let _ = engine.submit_batch(
                    extra
                        .iter()
                        .map(|id| EngineCommand::Drive {
                            instance: *id,
                            max: Some(3),
                        })
                        .collect(),
                );
                workers_done.fetch_add(1, Ordering::SeqCst);
            })
        };
        // Main thread: the adaptation loop runs against the live churn.
        while workers_done.load(Ordering::SeqCst) < workers {
            looper.tick();
        }
        for h in injectors {
            h.join().unwrap();
        }
        churn.join().unwrap();
    })
    .unwrap();

    // Deterministic give-up phase: keep failing the unrecoverable cohort
    // until the loop escalates every one of them.
    for _ in 0..80 {
        let escalated: Vec<InstanceId> = looper.escalated_instances().collect();
        if hard_ids.iter().all(|id| escalated.contains(id)) {
            break;
        }
        for id in &hard_ids {
            if escalated.contains(id) {
                continue;
            }
            let Some(inst) = engine.store.get(*id) else {
                continue;
            };
            match inst.state.marking.node(hp) {
                NodeState::Activated => {
                    let _ = engine.submit(EngineCommand::Start {
                        instance: *id,
                        node: hp,
                    });
                }
                NodeState::Running => {
                    let _ = engine.submit(EngineCommand::FailActivity {
                        instance: *id,
                        node: hp,
                        reason: "injected exception".into(),
                    });
                }
                NodeState::NotActivated => {
                    let mut driver = RandomDriver::new(id.raw());
                    let _ = drive_with(&engine, *id, &mut driver, Some(1));
                }
                _ => {}
            }
        }
        looper.tick();
    }
    let report = looper.run_until_quiescent(200);

    // Unrecoverables: escalated, and claimable by the supervisor (and
    // only by the supervisor) on the worklist.
    let escalated: Vec<InstanceId> = looper.escalated_instances().collect();
    for id in &hard_ids {
        assert!(escalated.contains(id), "{id} must have been given up on");
    }
    let supervisor_items = engine.worklist_for("supervisor");
    for id in &hard_ids {
        assert!(
            supervisor_items
                .iter()
                .any(|w| w.instance == *id && w.node == hp),
            "{id} must be on the supervisor worklist"
        );
    }
    assert!(engine
        .worklist_for("clerk")
        .iter()
        .all(|w| !(hard_ids.contains(&w.instance) && w.node == hp)));

    // Single-flight: no (instance, deviation) pair committed twice, and
    // the trail agrees with the report.
    let mut pairs: Vec<(InstanceId, String)> = engine
        .monitor
        .events()
        .into_iter()
        .filter_map(|(_, e)| match e {
            EngineEvent::AdaptationCommitted {
                instance,
                deviation,
                ..
            } => Some((instance, deviation)),
            _ => None,
        })
        .collect();
    let total_committed = pairs.len() as u64;
    pairs.sort();
    let before = pairs.len();
    pairs.dedup();
    assert_eq!(before, pairs.len(), "an instance was adapted twice");
    assert_eq!(
        report.committed, total_committed,
        "report must agree with the monitor trail"
    );
    assert!(
        report.committed > 0,
        "the workload must actually exercise repair: {report:?}"
    );

    // Convergence + audit: every instance (including churn extras and
    // escalated ones, once the supervisor-as-driver takes over) finishes
    // and replays cleanly.
    let all_ids = engine.store.ids();
    for pass in 0..4 {
        let mut open = 0usize;
        for id in &all_ids {
            if finished(&engine, *id) {
                continue;
            }
            open += 1;
            let mut driver = RandomDriver::new(0xd1ce ^ id.raw() ^ pass as u64);
            let _ = drive_with(&engine, *id, &mut driver, None);
        }
        if open == 0 {
            break;
        }
    }
    for id in &all_ids {
        assert!(finished(&engine, *id), "{id} did not converge");
        let (schema, blocks) = engine.materialized(*id).unwrap();
        let inst = engine.store.get(*id).unwrap();
        let ok = Execution::with_blocks_ref(&schema, &blocks)
            .audit(&inst.state)
            .unwrap();
        assert!(ok, "{id}: history replay must reproduce the marking");
    }
}
