//! The paper's central efficiency claim (C2): the per-operation compliance
//! conditions decide exactly like the trace-replay criterion — *"precise
//! and easy to implement compliance conditions"* that avoid replaying
//! histories. Property-tested over random schemas, random instance
//! progress and random change operations.

use adept_core::{check_fast, check_trace};
use adept_simgen::{generate_population, random_change, GenParams};
use adept_state::Execution;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        ..ProptestConfig::default()
    })]

    /// fast(ΔT, marking) == trace-replay(reduced history, S') for random
    /// workloads.
    #[test]
    fn fast_conditions_match_trace_criterion(
        schema_seed in 0u64..5000,
        pop_seed in 0u64..5000,
        change_seed in 0u64..5000,
    ) {
        let schema = adept_simgen::generate_schema(&GenParams::sized(14), schema_seed);
        let ex = Execution::new(&schema).unwrap();
        let Some((evolved, delta)) = random_change(&schema, change_seed, "prop") else {
            return Ok(()); // no applicable change on this schema
        };
        let ex_new = Execution::new(&evolved).unwrap();

        // moveActivity is the one operation whose state-based condition is
        // deliberately *conservative* (sufficient, not necessary): moving an
        // already-executed activity can coincidentally fit the recorded
        // order, which replay accepts but the NS-table rejects — the same
        // precision gap the ADEPT literature documents. For moves we check
        // soundness (fast-compliant => trace-compliant); for every other
        // operation the conditions are exact.
        let has_move = delta.ops.iter().any(|r| {
            matches!(r.op, adept_core::ChangeOp::MoveActivity { .. })
        });
        for st in generate_population(&ex, 4, pop_seed) {
            let fast = check_fast(&schema, &ex.blocks, &st, &delta);
            let trace = check_trace(&schema, &ex.blocks, &ex_new, &st);
            if has_move {
                prop_assert!(
                    !fast.is_compliant() || trace.is_compliant(),
                    "fast accepted a move that trace rejects (schema {} / pop {} / change {}):\n  delta: {}\n  fast:  {}\n  trace: {}\n  history: {}",
                    schema_seed, pop_seed, change_seed, &delta, fast, trace, &st.history
                );
            } else {
                prop_assert_eq!(
                    fast.is_compliant(),
                    trace.is_compliant(),
                    "divergence on schema seed {} / pop seed {} / change seed {}:\n  delta: {}\n  fast:  {}\n  trace: {}\n  history: {}",
                    schema_seed, pop_seed, change_seed, &delta, fast, trace, &st.history
                );
            }
        }
    }

    /// Fresh instances (no progress) are compliant with every valid change.
    #[test]
    fn fresh_instances_always_compliant(
        schema_seed in 0u64..5000,
        change_seed in 0u64..5000,
    ) {
        let schema = adept_simgen::generate_schema(&GenParams::sized(12), schema_seed);
        let ex = Execution::new(&schema).unwrap();
        let Some((evolved, delta)) = random_change(&schema, change_seed, "fresh") else {
            return Ok(());
        };
        let st = ex.init().unwrap();
        let fast = check_fast(&schema, &ex.blocks, &st, &delta);
        prop_assert!(fast.is_compliant(), "fresh instance rejected: {}", fast);
        let ex_new = Execution::new(&evolved).unwrap();
        let trace = check_trace(&schema, &ex.blocks, &ex_new, &st);
        prop_assert!(trace.is_compliant(), "fresh instance rejected by trace: {}", trace);
    }

    /// Attribute-only changes never make any instance non-compliant.
    #[test]
    fn attribute_changes_always_compliant(
        schema_seed in 0u64..5000,
        pop_seed in 0u64..5000,
    ) {
        let schema = adept_simgen::generate_schema(&GenParams::sized(10), schema_seed);
        let ex = Execution::new(&schema).unwrap();
        let Some(act) = schema.activities().next() else { return Ok(()); };
        let mut evolved = schema.clone();
        let rec = adept_core::apply_op(
            &mut evolved,
            &adept_core::ChangeOp::SetActivityAttributes {
                node: act.id,
                attrs: adept_model::ActivityAttributes {
                    role: Some("auditor".into()),
                    ..Default::default()
                },
            },
        ).unwrap();
        let delta: adept_core::Delta = std::iter::once(rec).collect();
        let ex_new = Execution::new(&evolved).unwrap();
        for st in generate_population(&ex, 3, pop_seed) {
            prop_assert!(check_fast(&schema, &ex.blocks, &st, &delta).is_compliant());
            prop_assert!(check_trace(&schema, &ex.blocks, &ex_new, &st).is_compliant());
        }
    }
}
