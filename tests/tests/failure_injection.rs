//! Failure injection: every illegal API sequence must produce a clean
//! error — never a panic, never silent corruption. After each rejected
//! operation the world must still verify and execute.

use adept_core::{ChangeError, ChangeOp, NewActivity};
use adept_engine::{EngineCommand, EngineError, ProcessEngine};
use adept_model::{DataId, InstanceId, NodeId, Value};
use adept_simgen::scenarios;
use adept_state::{DefaultDriver, Execution, RuntimeError};
use adept_tests::{adhoc, drive, evolve};
use adept_verify::is_correct;

#[test]
fn lifecycle_misuse_is_rejected_cleanly() {
    let schema = scenarios::order_process();
    let ex = Execution::new(&schema).unwrap();
    let mut st = ex.init().unwrap();
    let get = schema.node_by_name("get order").unwrap().id;
    let collect = schema.node_by_name("collect data").unwrap().id;

    // Complete before start.
    assert!(matches!(
        ex.complete_activity(&mut st, get, vec![]),
        Err(RuntimeError::NotRunning(_))
    ));
    // Start a not-yet-activated activity.
    assert!(matches!(
        ex.start_activity(&mut st, collect),
        Err(RuntimeError::NotActivatable(_))
    ));
    // Start a silent node.
    let split = schema
        .nodes()
        .find(|n| n.kind == adept_model::NodeKind::AndSplit)
        .unwrap()
        .id;
    assert!(matches!(
        ex.start_activity(&mut st, split),
        Err(RuntimeError::NotAnActivity(_))
    ));
    // Double start.
    ex.start_activity(&mut st, get).unwrap();
    assert!(matches!(
        ex.start_activity(&mut st, get),
        Err(RuntimeError::NotActivatable(_))
    ));
    // Decide where nothing is pending.
    assert!(matches!(
        ex.decide_xor(&mut st, split, collect),
        Err(RuntimeError::NoDecisionPending(_))
    ));
    // Unknown data element in completion writes.
    let err = ex
        .complete_activity(&mut st, get, vec![(DataId(999), Value::Int(1))])
        .unwrap_err();
    assert!(matches!(err, RuntimeError::UndeclaredWrite { .. }));
    // The instance is still usable after all the rejections.
    let amount = schema.data_by_name("amount").unwrap().id;
    ex.complete_activity(&mut st, get, vec![(amount, Value::Int(7))])
        .unwrap();
    ex.run(&mut st, &mut DefaultDriver, None).unwrap();
    assert!(ex.is_finished(&st));
}

#[test]
fn engine_rejects_unknown_entities() {
    let engine = ProcessEngine::new();
    assert!(matches!(
        engine.create_instance("no such type"),
        Err(EngineError::NotFound(_))
    ));
    let name = engine.deploy(scenarios::order_process()).unwrap();
    assert!(matches!(
        engine.submit(EngineCommand::Start {
            instance: InstanceId(999),
            node: NodeId(0),
        }),
        Err(EngineError::NotFound(_))
    ));
    assert!(evolve(&engine, "ghost", &[]).is_err());
    let id = engine.create_instance(&name).unwrap();
    // Ad-hoc change referencing nodes that do not exist.
    let err = adhoc(
        &engine,
        id,
        &ChangeOp::SerialInsert {
            activity: NewActivity::named("x"),
            pred: NodeId(400),
            succ: NodeId(401),
        },
    )
    .unwrap_err();
    assert!(matches!(err, EngineError::Change(_)));
    // The instance still runs.
    drive(&engine, id, None).unwrap();
    assert!(engine.is_finished(id).unwrap());
}

#[test]
fn rejected_changes_leave_no_trace() {
    let engine = ProcessEngine::new();
    let name = engine.deploy(scenarios::order_process()).unwrap();
    let id = engine.create_instance(&name).unwrap();
    let v1 = engine.repo.deployed(&name, 1).unwrap();
    let get = v1.schema.node_by_name("get order").unwrap().id;
    let deliver = v1.schema.node_by_name("deliver goods").unwrap().id;

    // Non-adjacent serial insert: precondition failure.
    let err = adhoc(
        &engine,
        id,
        &ChangeOp::SerialInsert {
            activity: NewActivity::named("bad"),
            pred: get,
            succ: deliver,
        },
    )
    .unwrap_err();
    assert!(matches!(
        err,
        EngineError::Change(ChangeError::Precondition(_))
    ));
    let inst = engine.store.get(id).unwrap();
    assert!(
        !inst.is_biased(),
        "failed change must not bias the instance"
    );
    let schema = engine.store.schema_of(&engine.repo, id).unwrap();
    assert!(schema.node_by_name("bad").is_none());
    assert!(is_correct(&schema));
}

#[test]
fn migration_of_type_without_new_version_is_noop() {
    let engine = ProcessEngine::new();
    let name = engine.deploy(scenarios::order_process()).unwrap();
    for _ in 0..5 {
        engine.create_instance(&name).unwrap();
    }
    let report = engine.migrate_all(&name, &Default::default(), 2).unwrap();
    assert_eq!(report.total(), 5);
    assert_eq!(
        report.migrated(),
        5,
        "already on latest: trivially compliant"
    );
    assert_eq!(report.from_version, 1);
    assert_eq!(report.to_version, 1);
}

#[test]
fn evolution_with_conflicting_ops_rolls_back() {
    let engine = ProcessEngine::new();
    let name = engine.deploy(scenarios::order_process()).unwrap();
    let v1 = engine.repo.deployed(&name, 1).unwrap();
    let confirm = v1.schema.node_by_name("confirm order").unwrap().id;
    let compose = v1.schema.node_by_name("compose order").unwrap().id;
    // Second op of the batch fails (opposing sync edges): no new version
    // may be created.
    let err = evolve(
        &engine,
        &name,
        &[
            ChangeOp::InsertSyncEdge {
                from: confirm,
                to: compose,
            },
            ChangeOp::InsertSyncEdge {
                from: compose,
                to: confirm,
            },
        ],
    );
    assert!(err.is_err());
    assert_eq!(
        engine.repo.latest_version(&name),
        Some(1),
        "no partial version"
    );
}

#[test]
fn completed_instances_reject_all_structural_changes() {
    let engine = ProcessEngine::new();
    let name = engine.deploy(scenarios::order_process()).unwrap();
    let id = engine.create_instance(&name).unwrap();
    drive(&engine, id, None).unwrap();
    let v1 = engine.repo.deployed(&name, 1).unwrap();
    let pack = v1.schema.node_by_name("pack goods").unwrap().id;
    let deliver = v1.schema.node_by_name("deliver goods").unwrap().id;
    let end = v1.schema.end_node();
    // Deleting or moving executed activities is a state-precondition error.
    for op in [
        ChangeOp::DeleteActivity { node: deliver },
        ChangeOp::MoveActivity {
            node: pack,
            pred: deliver,
            succ: end,
        },
    ] {
        let err = adhoc(&engine, id, &op).unwrap_err();
        assert!(
            matches!(
                err,
                EngineError::Change(ChangeError::StatePrecondition { .. })
            ),
            "{op}: got unexpected {err}"
        );
    }
    // Inserting before the *end node* of a completed instance, however, is
    // trace-compliant (the end node carries no history events): it
    // re-opens the instance, which must then execute the late activity.
    adhoc(
        &engine,
        id,
        &ChangeOp::SerialInsert {
            activity: NewActivity::named("late addendum"),
            pred: deliver,
            succ: end,
        },
    )
    .unwrap();
    assert!(!engine.is_finished(id).unwrap(), "instance re-opened");
    drive(&engine, id, None).unwrap();
    assert!(engine.is_finished(id).unwrap());
    let schema = engine.store.schema_of(&engine.repo, id).unwrap();
    let late = schema.node_by_name("late addendum").unwrap().id;
    assert!(engine
        .store
        .get(id)
        .unwrap()
        .state
        .history
        .started_activities()
        .contains(&late));
}
