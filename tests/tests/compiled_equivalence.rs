//! Observational equivalence of the two execution tiers: the compiled
//! arena path (`CompiledExecution` over a `CompiledSchema`) must be
//! indistinguishable from the interpreted path (`Execution`) on every
//! unbiased instance — identical enabled sets, identical observed event
//! streams, byte-identical serialized state — and biased instances must
//! demonstrably fall back to the interpreter (see
//! `docs/EXECUTION_CORE.md`).

use adept_engine::ProcessEngine;
use adept_model::CompiledSchema;
use adept_simgen::{generate_population, random_change, scenarios, GenParams, RandomDriver};
use adept_state::{CompactMarking, CompiledExecution, Execution};
use adept_tests::{adhoc, drive_with, evolve};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        ..ProptestConfig::default()
    })]

    /// A full driven run over a random schema produces the same result,
    /// the same observed event stream and a byte-identical serialized
    /// state on both tiers, when advanced in one-activity lockstep.
    #[test]
    fn random_runs_are_observationally_identical(
        schema_seed in 0u64..5000,
        drive_seed in 0u64..5000,
    ) {
        let schema = adept_simgen::generate_schema(&GenParams::sized(14), schema_seed);
        let ex = Execution::new(&schema).unwrap();
        let arena = CompiledSchema::compile(&schema, &ex.blocks);
        let cex = CompiledExecution::new(&schema, &arena);

        let mut di = RandomDriver::new(drive_seed);
        let mut dc = RandomDriver::new(drive_seed);
        let mut si = ex.init().unwrap();
        let mut sc = cex.init().unwrap();
        prop_assert_eq!(&si, &sc, "init diverges on schema seed {}", schema_seed);

        // One completed activity per round, events captured on both
        // sides; bounded far above any sized(14) schema's step count.
        for round in 0..256 {
            let mut evi = Vec::new();
            let mut evc = Vec::new();
            let ri = ex.run_observed(&mut si, &mut di, Some(1), &mut |e| evi.push(e));
            let rc = cex.run_observed(&mut sc, &mut dc, Some(1), &mut |e| evc.push(e));
            prop_assert_eq!(
                format!("{ri:?}"), format!("{rc:?}"),
                "run result diverges at round {} (schema {} / drive {})",
                round, schema_seed, drive_seed
            );
            prop_assert_eq!(
                &evi, &evc,
                "observed events diverge at round {} (schema {} / drive {})",
                round, schema_seed, drive_seed
            );
            prop_assert_eq!(&si, &sc);
            prop_assert_eq!(
                serde_json::to_string(&si).unwrap(),
                serde_json::to_string(&sc).unwrap(),
                "serialized state must be byte-identical"
            );
            prop_assert_eq!(ex.enabled(&si), cex.enabled(&sc));
            prop_assert_eq!(ex.is_finished(&si), cex.is_finished(&sc));
            if ri.is_err() || (matches!(ri, Ok(0)) && ex.is_finished(&si)) {
                break;
            }
        }
    }

    /// Every marking a random population reaches on the interpreted path
    /// round-trips losslessly through the compact representation, and a
    /// marking from an ad-hoc-*changed* (biased) schema is rejected by
    /// the arena rather than silently misread.
    #[test]
    fn populations_round_trip_and_bias_is_rejected(
        schema_seed in 0u64..5000,
        pop_seed in 0u64..5000,
        change_seed in 0u64..5000,
    ) {
        let schema = adept_simgen::generate_schema(&GenParams::sized(12), schema_seed);
        let ex = Execution::new(&schema).unwrap();
        let arena = CompiledSchema::compile(&schema, &ex.blocks);
        for st in generate_population(&ex, 4, pop_seed) {
            let compact = CompactMarking::from_marking(&arena, &st.marking).unwrap();
            prop_assert_eq!(compact.to_marking(&arena), st.marking.clone());
        }
        // A structural change introduces nodes the base arena has never
        // interned — exactly the biased-instance shape. If the change
        // added a node, driving the evolved schema far enough to mark it
        // must make the base arena refuse the conversion.
        let Some((evolved, delta)) = random_change(&schema, change_seed, "bias") else {
            return Ok(());
        };
        let added: Vec<_> = delta.added_nodes().into_iter().collect();
        if added.is_empty() {
            return Ok(());
        }
        let ex2 = Execution::new(&evolved).unwrap();
        for st in generate_population(&ex2, 6, pop_seed) {
            if added.iter().any(|n| st.marking.marked_nodes().any(|(m, _)| m == *n)) {
                prop_assert!(
                    CompactMarking::from_marking(&arena, &st.marking).is_err(),
                    "foreign marking accepted (schema {} / change {})",
                    schema_seed, change_seed
                );
                break;
            }
        }
    }
}

/// The same end-to-end lifecycle — deploy, create, ad-hoc bias, drive,
/// evolve, migrate, drive to completion, remove — performed on one
/// engine with the compiled path enabled (the default) and one with it
/// disabled must leave byte-identical snapshots, and the path counters
/// must prove biased instances fell back to the interpreter.
#[test]
fn engine_lifecycles_match_across_paths() {
    let compiled = ProcessEngine::new();
    let interp = ProcessEngine::new();
    interp.set_compiled_enabled(false);
    assert!(compiled.compiled_enabled());
    assert!(!interp.compiled_enabled());

    for engine in [&compiled, &interp] {
        let name = engine.deploy(scenarios::order_process()).unwrap();
        let v1 = engine.repo.deployed(&name, 1).unwrap();
        let get = v1.schema.node_by_name("get order").unwrap().id;
        let collect = v1.schema.node_by_name("collect data").unwrap().id;

        let ids: Vec<_> = (0..12)
            .map(|_| engine.create_instance(&name).unwrap())
            .collect();
        for (k, id) in ids.iter().enumerate() {
            if k % 4 == 0 {
                // Bias disjoint from the evolution delta: stays biased,
                // still migrates.
                adhoc(
                    engine,
                    *id,
                    &adept_core::ChangeOp::SerialInsert {
                        activity: adept_core::NewActivity::named("check customer"),
                        pred: get,
                        succ: collect,
                    },
                )
                .unwrap();
            }
            let mut driver = RandomDriver::new(k as u64);
            drive_with(engine, *id, &mut driver, Some(1 + k % 3)).unwrap();
        }

        evolve(engine, &name, &[scenarios::fig1_insert_op(&v1.schema)]).unwrap();
        engine
            .migrate_all(&name, &adept_core::MigrationOptions::default(), 1)
            .unwrap();
        for (k, id) in ids.iter().enumerate() {
            let mut driver = RandomDriver::new(1000 + k as u64);
            drive_with(engine, *id, &mut driver, Some(200)).unwrap();
        }
        engine.remove_instance(ids[5]).unwrap();
    }

    let a = serde_json::to_string(&compiled.snapshot()).unwrap();
    let b = serde_json::to_string(&interp.snapshot()).unwrap();
    assert_eq!(a, b, "snapshots must be byte-identical across paths");

    // Worklists agree too (same item set, same order).
    assert_eq!(
        format!("{:?}", compiled.worklist_full()),
        format!("{:?}", interp.worklist_full())
    );

    let (on_compiled, on_interp) = compiled.exec_path_counts();
    assert!(
        on_compiled > 0,
        "unbiased instances must take the compiled path"
    );
    assert!(
        on_interp > 0,
        "biased instances must fall back to the interpreter"
    );
    let (off_compiled, off_interp) = interp.exec_path_counts();
    assert_eq!(off_compiled, 0, "disabled engine must never compile");
    assert!(off_interp > 0);
}

/// Flipping the path selector mid-stream re-resolves contexts on the
/// other tier without disturbing instance state.
#[test]
fn toggling_compiled_path_is_transparent() {
    let engine = ProcessEngine::new();
    let name = engine.deploy(scenarios::order_process()).unwrap();
    let id = engine.create_instance(&name).unwrap();
    let mut driver = RandomDriver::new(7);
    drive_with(&engine, id, &mut driver, Some(2)).unwrap();
    let (c1, _) = engine.exec_path_counts();
    assert!(c1 > 0);

    engine.set_compiled_enabled(false);
    drive_with(&engine, id, &mut driver, Some(2)).unwrap();
    let (c2, i2) = engine.exec_path_counts();
    assert_eq!(c2, c1, "no compiled resolutions after the flip");
    assert!(i2 > 0);

    engine.set_compiled_enabled(true);
    drive_with(&engine, id, &mut driver, None).unwrap();
    assert!(engine.is_finished(id).unwrap());
}
