//! Property tests for the workload generator (generated schemas are
//! always correct; changes preserve correctness — claim C3/C4) and for the
//! substitution-block overlay (Fig. 2 faithfulness: `overlay(S, block(Δ))
//! == apply(Δ, S)`).

use adept_core::{apply_op, ChangeOp, Delta, NewActivity};
use adept_model::EdgeKind;
use adept_simgen::{random_change, GenParams};
use adept_storage::SubstitutionBlock;
use adept_verify::is_correct;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 96,
        ..ProptestConfig::default()
    })]

    /// C4: every generated schema passes the full verification suite.
    #[test]
    fn generated_schemas_are_correct(seed in 0u64..100_000, size in 4usize..40) {
        let s = adept_simgen::generate_schema(&GenParams::sized(size), seed);
        prop_assert!(is_correct(&s));
        prop_assert!(s.activities().count() >= 1);
    }

    /// C3: applying any generated valid change preserves correctness.
    #[test]
    fn changes_preserve_correctness(seed in 0u64..100_000) {
        let s = adept_simgen::generate_schema(&GenParams::sized(15), seed);
        if let Some((evolved, _)) = random_change(&s, seed ^ 0xabcdef, "p") {
            prop_assert!(is_correct(&evolved));
        }
    }

    /// Fig. 2 faithfulness: reconstructing the instance-specific schema
    /// from base + substitution block equals direct change application.
    #[test]
    fn overlay_equals_direct_application(seed in 0u64..100_000, ops in 1usize..4) {
        let base = adept_simgen::generate_schema(&GenParams::sized(12), seed);
        let mut materialized = base.clone();
        materialized.reserve_private_id_space();
        let mut delta = Delta::new();
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x5eed);
        for k in 0..ops {
            // Random serial inserts + sync edges as bias (the common
            // ad-hoc operations).
            let edges: Vec<_> = materialized
                .edges()
                .filter(|e| e.kind == EdgeKind::Control)
                .map(|e| (e.from, e.to))
                .collect();
            if edges.is_empty() { break; }
            let (pred, succ) = edges[rng.gen_range(0..edges.len())];
            let op = ChangeOp::SerialInsert {
                activity: NewActivity::named(format!("bias{k}")),
                pred,
                succ,
            };
            if let Ok(rec) = apply_op(&mut materialized, &op) {
                delta.push(rec);
            }
        }
        if delta.is_empty() {
            return Ok(());
        }
        let block = SubstitutionBlock::from_delta(&delta, &materialized);
        let rebuilt = block.overlay(&base).unwrap();
        prop_assert_eq!(rebuilt, materialized);
    }

    /// Bias algebra: a delta composed with the physical deletion of its own
    /// insertion purges to the empty delta.
    #[test]
    fn insert_delete_purges_to_noop(seed in 0u64..100_000) {
        let base = adept_simgen::generate_schema(&GenParams::sized(10), seed);
        let mut s = base.clone();
        let edges: Vec<_> = s
            .edges()
            .filter(|e| e.kind == EdgeKind::Control)
            .map(|e| (e.from, e.to))
            .collect();
        let mut rng = SmallRng::seed_from_u64(seed);
        let (pred, succ) = edges[rng.gen_range(0..edges.len())];
        let Ok(rec) = apply_op(&mut s, &ChangeOp::SerialInsert {
            activity: NewActivity::named("temp"),
            pred,
            succ,
        }) else { return Ok(()); };
        let x = rec.inserted_activity().unwrap();
        let mut delta: Delta = std::iter::once(rec).collect();
        let Ok(del) = apply_op(&mut s, &ChangeOp::DeleteActivity { node: x }) else {
            return Ok(());
        };
        let physically_removed = del.removed_nodes.contains(&x);
        delta.push(del);
        delta.purge();
        if physically_removed {
            prop_assert!(delta.is_empty(), "insert+physical delete must purge: {}", &delta);
        } else {
            prop_assert_eq!(delta.len(), 2, "nullified deletes must be kept");
        }
    }
}

/// Deterministic regression: the generator's id spaces stay separated
/// between type level and instance level.
#[test]
fn private_id_space_separation() {
    let base = adept_simgen::generate_schema(&GenParams::sized(20), 77);
    assert!(base.ids_below_private_space());
    let mut inst = base.clone();
    inst.reserve_private_id_space();
    let edges: Vec<_> = inst
        .edges()
        .filter(|e| e.kind == EdgeKind::Control)
        .map(|e| (e.from, e.to))
        .take(1)
        .collect();
    let (pred, succ) = edges[0];
    let rec = apply_op(
        &mut inst,
        &ChangeOp::SerialInsert {
            activity: NewActivity::named("x"),
            pred,
            succ,
        },
    )
    .unwrap();
    let x = rec.inserted_activity().unwrap();
    assert!(x.raw() >= adept_model::ProcessSchema::PRIVATE_ID_BASE);
    assert!(!inst.ids_below_private_space());
}
