//! The automatic adaptation loop (`adept-adapt`): detect → synthesize →
//! preview → commit over the monitor event stream.
//!
//! * repair — failed activities are retried with backoff, then skipped
//!   once the budget is spent; compensations are inserted in front of
//!   skips; stuck external loop decisions are exited;
//! * give-up — unrecoverable instances are escalated onto a human role's
//!   worklist and never adapted again;
//! * resilience — a cursor that falls behind retention resyncs
//!   explicitly, rebuilds its running-activity table from the store, and
//!   keeps repairing;
//! * single-flight — no instance is ever adapted twice for the same
//!   deviation, under arbitrary interleavings of injector and loop.

use adept_adapt::{
    AdaptationConfig, AdaptationLoop, CompensateOnFailure, EscalateToWorklist, RetryThenSkip,
};
use adept_engine::{EngineCommand, EngineEvent, ProcessEngine};
use adept_model::{InstanceId, LoopCond, NodeId, SchemaBuilder};
use adept_simgen::exception_scenario;
use adept_state::{Execution, NodeState};
use adept_tests::drive;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn start(engine: &ProcessEngine, id: InstanceId, node: NodeId) {
    engine
        .submit(EngineCommand::Start { instance: id, node })
        .unwrap();
}

fn complete(engine: &ProcessEngine, id: InstanceId, node: NodeId) {
    engine
        .submit(EngineCommand::Complete {
            instance: id,
            node,
            writes: vec![],
        })
        .unwrap();
}

fn fail(engine: &ProcessEngine, id: InstanceId, node: NodeId, reason: &str) {
    engine
        .submit(EngineCommand::FailActivity {
            instance: id,
            node,
            reason: reason.into(),
        })
        .unwrap();
}

/// Node id of a named activity in the instance's *materialized* schema.
fn node_named(engine: &ProcessEngine, id: InstanceId, name: &str) -> Option<NodeId> {
    let (schema, _) = engine.materialized(id).ok()?;
    schema.node_by_name(name).map(|n| n.id)
}

fn finished(engine: &ProcessEngine, id: InstanceId) -> bool {
    let (schema, blocks) = engine.materialized(id).unwrap();
    let inst = engine.store.get(id).unwrap();
    Execution::with_blocks_ref(&schema, &blocks).is_finished(&inst.state)
}

fn assert_audited(engine: &ProcessEngine, id: InstanceId) {
    let (schema, blocks) = engine.materialized(id).unwrap();
    let inst = engine.store.get(id).unwrap();
    let ok = Execution::with_blocks_ref(&schema, &blocks)
        .audit(&inst.state)
        .unwrap();
    assert!(ok, "{id}: replayed history must reproduce the marking");
}

/// Committed `(instance, deviation)` pairs from the adaptation trail.
fn committed_pairs(engine: &ProcessEngine) -> Vec<(InstanceId, String)> {
    engine
        .monitor
        .events()
        .into_iter()
        .filter_map(|(_, e)| match e {
            EngineEvent::AdaptationCommitted {
                instance,
                deviation,
                ..
            } => Some((instance, deviation)),
            _ => None,
        })
        .collect()
}

/// A loop created *after* the failure happened still repairs it when
/// constructed with `from_backlog` (restart adoption), whereas `new`
/// starts at the tail and only sees what comes next.
#[test]
fn from_backlog_adopts_failures_that_predate_the_loop() {
    let engine = ProcessEngine::new();
    let name = engine.deploy(exception_scenario()).unwrap();
    let id = engine.create_instance(&name).unwrap();
    let intake = node_named(&engine, id, "intake").unwrap();
    let process = node_named(&engine, id, "process").unwrap();
    start(&engine, id, intake);
    complete(&engine, id, intake);
    start(&engine, id, process);
    fail(&engine, id, process, "crashed before the loop existed");

    let mut tail =
        AdaptationLoop::new(&engine, AdaptationConfig::default()).with_policy(RetryThenSkip {
            max_retries: 0,
            base_delay: 1,
        });
    tail.run_until_quiescent(8);
    assert_eq!(
        tail.report().committed,
        0,
        "a tail cursor must miss the backlog"
    );

    let mut adopted = AdaptationLoop::from_backlog(&engine, AdaptationConfig::default())
        .with_policy(RetryThenSkip {
            max_retries: 0,
            base_delay: 1,
        });
    adopted.run_until_quiescent(8);
    assert_eq!(adopted.report().committed, 1);
    drive(&engine, id, None).unwrap();
    assert!(finished(&engine, id));
    assert_audited(&engine, id);
}

/// A failure is first retried (with a backoff re-start fired by the
/// loop), and once the retry budget is spent the skippable activity is
/// deleted — the instance then runs to completion.
#[test]
fn retry_then_skip_repairs_a_flaky_activity() {
    let engine = ProcessEngine::new();
    let name = engine.deploy(exception_scenario()).unwrap();
    let id = engine.create_instance(&name).unwrap();
    let mut looper = AdaptationLoop::new(
        &engine,
        AdaptationConfig {
            max_in_flight: 8,
            ..AdaptationConfig::default()
        },
    )
    .with_policy(RetryThenSkip {
        max_retries: 1,
        base_delay: 1,
    })
    .with_policy(EscalateToWorklist::new("supervisor"));

    let intake = node_named(&engine, id, "intake").unwrap();
    let process = node_named(&engine, id, "process").unwrap();
    start(&engine, id, intake);
    complete(&engine, id, intake);
    start(&engine, id, process);
    fail(&engine, id, process, "flaky: attempt 1");

    looper.tick(); // detects attempt 1, commits the retry plan
    looper.tick(); // fires the backoff re-start
    assert_eq!(looper.report().retries_fired, 1);
    assert_eq!(
        engine.store.get(id).unwrap().state.marking.node(process),
        NodeState::Running,
        "the loop must have re-started the activity"
    );

    fail(&engine, id, process, "flaky: attempt 2");
    looper.tick(); // budget spent -> skip commits

    assert!(
        node_named(&engine, id, "process").is_none(),
        "the flaky activity must have been deleted"
    );
    drive(&engine, id, None).unwrap();
    assert!(finished(&engine, id));
    assert_audited(&engine, id);

    let report = looper.report();
    assert_eq!(report.committed, 2, "one retry + one skip");
    assert_eq!(report.escalated, 0);
    let plans: Vec<String> = engine
        .monitor
        .events()
        .into_iter()
        .filter_map(|(_, e)| match e {
            EngineEvent::AdaptationCommitted { plan, .. } => Some(plan),
            _ => None,
        })
        .collect();
    assert!(plans[0].starts_with("retry("), "trail: {plans:?}");
    assert!(plans[1].starts_with("skip("), "trail: {plans:?}");
}

/// The compensation policy inserts a `compensate <name>` activity after
/// the failure and skips the failed step; the instance completes through
/// the compensation.
#[test]
fn compensation_is_inserted_in_front_of_the_skip() {
    let engine = ProcessEngine::new();
    let name = engine.deploy(exception_scenario()).unwrap();
    let id = engine.create_instance(&name).unwrap();
    let mut looper = AdaptationLoop::new(&engine, AdaptationConfig::default())
        .with_policy(CompensateOnFailure)
        .with_policy(EscalateToWorklist::new("supervisor"));

    let intake = node_named(&engine, id, "intake").unwrap();
    let process = node_named(&engine, id, "process").unwrap();
    start(&engine, id, intake);
    complete(&engine, id, intake);
    start(&engine, id, process);
    fail(&engine, id, process, "unrepairable input");
    looper.tick();

    assert!(node_named(&engine, id, "process").is_none());
    let comp =
        node_named(&engine, id, "compensate process").expect("compensation must be inserted");
    drive(&engine, id, None).unwrap();
    let inst = engine.store.get(id).unwrap();
    assert_eq!(inst.state.marking.node(comp), NodeState::Completed);
    assert!(finished(&engine, id));
    assert_audited(&engine, id);
    assert_eq!(looper.report().committed, 1);
}

/// An unskippable failure exhausts the policy chain down to the give-up
/// policy: the activity's role is rewritten so the instance lands on the
/// supervisor's worklist, and the loop stops adapting it.
#[test]
fn unrecoverable_failure_escalates_to_the_role_worklist() {
    let engine = ProcessEngine::new();
    let mut schema = exception_scenario();
    let process = schema.node_by_name("process").unwrap().id;
    schema.node_mut(process).unwrap().attrs.skippable = false;
    let name = engine.deploy(schema).unwrap();
    let id = engine.create_instance(&name).unwrap();
    let mut looper = AdaptationLoop::new(&engine, AdaptationConfig::default())
        .with_policy(RetryThenSkip {
            max_retries: 0,
            base_delay: 1,
        })
        .with_policy(CompensateOnFailure)
        .with_policy(EscalateToWorklist::new("supervisor"));

    let intake = node_named(&engine, id, "intake").unwrap();
    start(&engine, id, intake);
    complete(&engine, id, intake);
    start(&engine, id, process);
    fail(&engine, id, process, "no retry, no skip");
    looper.tick();

    let report = looper.report();
    assert_eq!(report.escalated, 1);
    assert_eq!(
        looper.escalated_instances().collect::<Vec<_>>(),
        vec![id],
        "the instance must be marked given-up"
    );
    // The role rewrite landed: the failed activity is claimable by the
    // supervisor and by nobody else.
    let items = engine.worklist_for("supervisor");
    assert!(
        items.iter().any(|w| w.instance == id && w.node == process),
        "escalated work must appear on the supervisor worklist: {items:?}"
    );
    assert!(engine
        .worklist_for("clerk")
        .iter()
        .all(|w| !(w.instance == id && w.node == process)));

    // Further failures of the same instance are ignored — single-flight
    // plus the escalation mark.
    start(&engine, id, process);
    fail(&engine, id, process, "still failing");
    looper.tick();
    assert_eq!(looper.report().escalated, 1);
    assert_eq!(committed_pairs(&engine).len(), 1, "only the role rewrite");
}

/// An instance silently parked on a pending *external* loop decision is
/// detected by the silence clock and jumped out of the loop.
#[test]
fn stuck_external_loop_decision_is_exited() {
    let mut b = SchemaBuilder::new("stuck loop");
    let before = b.activity("before");
    b.loop_start();
    let body = b.activity("body");
    b.loop_end(LoopCond::External);
    let engine = ProcessEngine::new();
    let name = engine.deploy(b.build().unwrap()).unwrap();
    let id = engine.create_instance(&name).unwrap();
    let mut looper = AdaptationLoop::new(
        &engine,
        AdaptationConfig {
            decision_deadline: 2,
            ..AdaptationConfig::default()
        },
    )
    .with_policy(RetryThenSkip::default())
    .with_policy(EscalateToWorklist::new("supervisor"));

    start(&engine, id, before);
    complete(&engine, id, before);
    start(&engine, id, body);
    complete(&engine, id, body);
    // The loop-end now waits for an external decision nobody will make.
    for _ in 0..6 {
        looper.tick();
    }

    let report = looper.report();
    assert!(report.committed >= 1, "the jump-back must have committed");
    assert_eq!(report.escalated, 0);
    assert!(engine
        .monitor
        .events()
        .iter()
        .any(|(_, e)| matches!(e, EngineEvent::DecisionMade { instance, .. } if *instance == id)));
    drive(&engine, id, None).unwrap();
    assert!(finished(&engine, id), "exiting the loop unblocks the end");
    assert_audited(&engine, id);
}

/// Satellite: the loop survives retention eviction while live. The
/// cursor resyncs explicitly (counted, never silent), the
/// running-activity table is rebuilt from the store, and repair
/// continues to converge.
#[test]
fn cursor_resyncs_under_retention_eviction_and_keeps_repairing() {
    let engine = ProcessEngine::new();
    engine.monitor.set_retention(8);
    let name = engine.deploy(exception_scenario()).unwrap();
    let id = engine.create_instance(&name).unwrap();
    let mut looper = AdaptationLoop::new(&engine, AdaptationConfig::default())
        .with_policy(RetryThenSkip {
            max_retries: 0,
            base_delay: 1,
        })
        .with_policy(EscalateToWorklist::new("supervisor"));

    let intake = node_named(&engine, id, "intake").unwrap();
    let process = node_named(&engine, id, "process").unwrap();
    start(&engine, id, intake);
    complete(&engine, id, intake);
    start(&engine, id, process);
    // Evict everything the cursor has not read yet.
    for k in 0..200u64 {
        engine
            .monitor
            .record(EngineEvent::CheckpointTaken { wal_seq: k });
    }
    looper.tick();
    let report = looper.report();
    assert!(report.resyncs >= 1, "the gap must be resynced explicitly");
    assert!(report.events_skipped > 0, "the gap size must be counted");

    // The rescan rebuilt the running table from the store, so the
    // failure injected *after* the gap is still classified and repaired.
    fail(&engine, id, process, "failing after the gap");
    looper.tick();
    assert!(
        node_named(&engine, id, "process").is_none(),
        "repair must continue after the resync"
    );
    drive(&engine, id, None).unwrap();
    assert!(finished(&engine, id));
    assert_audited(&engine, id);
    assert_eq!(looper.report().committed, 1);
}

/// A deadline-breached activity is cancelled (failed back) by the loop
/// and then repaired through the ordinary failure path.
#[test]
fn deadline_breach_is_cancelled_then_repaired() {
    let engine = ProcessEngine::new();
    let name = engine.deploy(exception_scenario()).unwrap();
    let id = engine.create_instance(&name).unwrap();
    let mut looper = AdaptationLoop::new(
        &engine,
        AdaptationConfig {
            default_deadline: 3,
            ..AdaptationConfig::default()
        },
    )
    .with_policy(RetryThenSkip {
        max_retries: 0,
        base_delay: 1,
    })
    .with_policy(EscalateToWorklist::new("supervisor"));

    let intake = node_named(&engine, id, "intake").unwrap();
    let process = node_named(&engine, id, "process").unwrap();
    start(&engine, id, intake);
    complete(&engine, id, intake);
    start(&engine, id, process);
    // `process` has no expected_duration_min, so the configured default
    // (3 ticks) applies. Idle past it.
    for _ in 0..12 {
        looper.tick();
    }
    assert!(
        engine.monitor.events().iter().any(
            |(_, e)| matches!(e, EngineEvent::ActivityFailed { node, .. } if *node == process)
        ),
        "the overrun must have been cancelled into a failure"
    );
    // The cancellation became an ActivityFailed the loop then repaired
    // (retry budget 0, skippable -> deleted).
    assert!(node_named(&engine, id, "process").is_none());
    drive(&engine, id, None).unwrap();
    assert!(finished(&engine, id));
    assert_audited(&engine, id);
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        ..ProptestConfig::default()
    })]

    /// Single-flight under arbitrary interleavings: however injector
    /// actions and loop ticks interleave, no `(instance, deviation)`
    /// pair ever commits twice, and every instance converges (finishes,
    /// or is escalated and finishes once driven).
    #[test]
    fn no_deviation_is_ever_adapted_twice(seed in 0u64..10_000) {
        let engine = ProcessEngine::new();
        let name = engine.deploy(exception_scenario()).unwrap();
        let ids: Vec<InstanceId> = (0..4)
            .map(|_| engine.create_instance(&name).unwrap())
            .collect();
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut looper = AdaptationLoop::new(
            &engine,
            AdaptationConfig {
                threads: 2,
                ..AdaptationConfig::default()
            },
        )
        .with_policy(RetryThenSkip { max_retries: 1, base_delay: 1 })
        .with_policy(EscalateToWorklist::new("supervisor"));

        // Per-instance injected-failure budgets.
        let mut budgets: Vec<u32> = ids.iter().map(|_| rng.gen_range(0..4)).collect();
        for _ in 0..40 {
            for (k, id) in ids.iter().enumerate() {
                if !rng.gen_bool(0.6) {
                    continue;
                }
                let Some(process) = node_named(&engine, *id, "process") else {
                    let _ = drive(&engine, *id, Some(1));
                    continue;
                };
                let st = engine.store.get(*id).unwrap().state.marking.node(process);
                match st {
                    NodeState::Activated => {
                        let _ = engine.submit(EngineCommand::Start { instance: *id, node: process });
                    }
                    NodeState::Running => {
                        if budgets[k] > 0 {
                            budgets[k] -= 1;
                            let _ = engine.submit(EngineCommand::FailActivity {
                                instance: *id,
                                node: process,
                                reason: "injected".into(),
                            });
                        } else {
                            let _ = engine.submit(EngineCommand::Complete {
                                instance: *id,
                                node: process,
                                writes: vec![],
                            });
                        }
                    }
                    _ => {
                        let _ = drive(&engine, *id, Some(1));
                    }
                }
            }
            if rng.gen_bool(0.7) {
                looper.tick();
            }
        }
        looper.run_until_quiescent(64);

        // Single-flight: committed (instance, deviation) pairs unique.
        let pairs = committed_pairs(&engine);
        let mut unique = pairs.clone();
        unique.sort();
        unique.dedup();
        prop_assert_eq!(pairs.len(), unique.len(), "duplicate adaptation (seed {})", seed);

        // Convergence: every instance finishes (escalated ones once a
        // human — here: the driver — takes over), and audits cleanly.
        for id in &ids {
            let _ = drive(&engine, *id, None);
            prop_assert!(finished(&engine, *id), "{} must converge (seed {})", id, seed);
            assert_audited(&engine, *id);
        }
    }
}
