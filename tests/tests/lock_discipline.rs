//! Lock-discipline checks: the `adept_storage::ordered` layer must
//! reject illegal acquisitions at run time (debug / `lock-order-check`
//! builds), and every legal workload must leave the observed
//! acquisition graph acyclic.
//!
//! The violation tests are compiled only when the checker is live —
//! `cargo test` (debug) or `cargo test --release --features
//! lock-order-check`. The acyclicity tests run everywhere (the
//! no-checker build's `check()` trivially passes, which is itself the
//! contract: release builds pay nothing).

use adept_engine::ProcessEngine;
use adept_simgen::{scenarios, RandomDriver};
use adept_storage::ordered::{self, classes};
use adept_storage::MemoryBackend;
use adept_tests::{drive_with, evolve};

#[cfg(any(debug_assertions, feature = "lock-order-check"))]
mod violations {
    use super::*;
    use adept_storage::ordered::{OrderedMutex, OrderedRwLock};
    use adept_storage::Shards;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
        payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_else(|| "<non-string panic>".to_string())
    }

    /// Acquiring a store-shard lock while holding a WAL-segment lock
    /// inverts the declared order (store.shard=20 < wal.file-state=72)
    /// and must panic with both acquisition sites.
    #[test]
    fn inverted_acquisition_panics() {
        let wal_side = OrderedMutex::new(&classes::WAL_FILE_STATE, ());
        let store_side = OrderedRwLock::new(&classes::STORE_SHARD, ());
        let _held = wal_side.lock();
        let result = catch_unwind(AssertUnwindSafe(|| {
            let _bad = store_side.read();
        }));
        let msg = panic_message(result.expect_err("inverted acquisition must panic"));
        assert!(
            msg.contains("lock-order violation"),
            "unexpected panic message: {msg}"
        );
        assert!(msg.contains("store.shard") && msg.contains("wal.file-state"));
    }

    /// Holding two shards of the same table without the sweep API is the
    /// one-shard-per-table violation.
    #[test]
    fn two_shards_of_one_table_panics() {
        let table: Shards<u32> = Shards::new(&classes::TEST_SUPPORT, 4);
        let _first = table.for_raw(0).read();
        let result = catch_unwind(AssertUnwindSafe(|| {
            let _second = table.for_raw(1).read();
        }));
        let msg = panic_message(result.expect_err("second same-class lock must panic"));
        assert!(
            msg.contains("one-shard-per-table violation"),
            "unexpected panic message: {msg}"
        );
    }

    /// The sweep API itself enforces ascending shard order: a descending
    /// sweep is refused rather than allowed to deadlock against an
    /// ascending one.
    #[test]
    fn descending_sweep_panics() {
        let table: Shards<u32> = Shards::new(&classes::TEST_SUPPORT, 4);
        let _high = table.for_raw(3).read_sweep();
        let result = catch_unwind(AssertUnwindSafe(|| {
            let _low = table.for_raw(1).read_sweep();
        }));
        let msg = panic_message(result.expect_err("descending sweep must panic"));
        assert!(msg.contains("violation"), "unexpected panic message: {msg}");
    }
}

use proptest::prelude::*;

proptest! {
    /// Random legal acquisition subsets keep the observed graph acyclic:
    /// each case acquires an arbitrary subset of the declared classes in
    /// ascending rank order — exactly the discipline the ranks encode —
    /// and the accumulated edge graph must never close a cycle.
    #[test]
    fn random_legal_interleavings_stay_acyclic(subset in 0u64..(1 << 13)) {
        use adept_storage::ordered::OrderedRwLock;
        let locks: Vec<OrderedRwLock<u32>> = classes::all()
            .into_iter()
            .map(|class| OrderedRwLock::new(class, 0))
            .collect();
        let mut guards = Vec::new();
        for (i, lock) in locks.iter().enumerate() {
            if (subset >> i) & 1 == 1 {
                guards.push(lock.read());
            }
        }
        drop(guards);
        prop_assert!(
            ordered::check().is_ok(),
            "legal ascending interleavings must stay acyclic"
        );
    }
}

/// A full durable-engine workload — deploy, create, drive, evolve,
/// migrate, worklist, events — recorded by the checker must yield an
/// acyclic acquisition graph, and `dump()` must describe it.
#[test]
fn engine_workload_graph_is_acyclic() {
    let engine = ProcessEngine::with_wal(Box::new(MemoryBackend::new())).unwrap();
    let name = engine.deploy(scenarios::order_process()).unwrap();
    let ids: Vec<_> = (0..24)
        .map(|_| engine.create_instance(&name).unwrap())
        .collect();
    for (i, id) in ids.iter().enumerate() {
        let mut driver = RandomDriver::new(i as u64);
        let _ = drive_with(&engine, *id, &mut driver, Some(1 + i % 3));
    }
    let schema = engine.repo.deployed(&name, 1).unwrap().schema.clone();
    let ops = scenarios::fig1_delta_ops(&schema);
    evolve(&engine, &name, &ops).unwrap();
    let _ = engine
        .migrate_all(&name, &adept_core::MigrationOptions::default(), 4)
        .unwrap();
    let _ = engine.worklist();
    let _ = engine.worklist_delta(0);
    let _ = engine.monitor.events();

    ordered::check().expect("engine workload must respect the declared lock order");
    let dump = ordered::dump();
    assert!(!dump.is_empty());
    #[cfg(any(debug_assertions, feature = "lock-order-check"))]
    assert!(
        dump.contains("store.shard"),
        "workload should have recorded store-shard acquisitions:\n{dump}"
    );
}
