//! Cross-crate integration: engine lifecycle across storage strategies,
//! biased-instance migration at population scale, and execution invariants
//! on the domain scenarios.

use adept_core::MigrationOptions;
use adept_engine::{EngineEvent, ProcessEngine};
use adept_simgen::{scenarios, RandomDriver};
use adept_state::NodeState;
use adept_storage::Representation;
use adept_tests::{adhoc, drive, drive_with, evolve};

#[test]
fn clinical_pathway_with_ad_hoc_deviation() {
    // E-health scenario: during treatment, an extra "specialist consult" is
    // inserted ad hoc for one patient, and an unnecessary lab activity is
    // (attempted to be) deleted.
    let engine = ProcessEngine::new();
    let name = engine.deploy(scenarios::clinical_pathway()).unwrap();
    let patient = engine.create_instance(&name).unwrap();

    let v1 = engine.repo.deployed(&name, 1).unwrap();
    let anam = v1.schema.node_by_name("anamnesis").unwrap().id;
    let admit = v1.schema.node_by_name("admit patient").unwrap().id;

    // Insert consult between admission and anamnesis before running.
    adhoc(
        &engine,
        patient,
        &adept_core::ChangeOp::SerialInsert {
            activity: adept_core::NewActivity::named("specialist consult").with_role("physician"),
            pred: admit,
            succ: anam,
        },
    )
    .unwrap();
    assert!(engine.store.get(patient).unwrap().is_biased());

    // The consult shows up on the physician's worklist once admission is
    // done.
    let mut driver = RandomDriver::new(1);
    drive_with(&engine, patient, &mut driver, Some(1)).unwrap();
    let wl = engine.worklist_for("physician");
    assert!(
        wl.iter().any(|w| w.activity == "specialist consult"),
        "worklist: {wl:?}"
    );

    // Run to completion (guards + loop terminate with random lab results).
    drive_with(&engine, patient, &mut driver, Some(200)).unwrap();
    assert!(engine.is_finished(patient).unwrap());
}

#[test]
fn container_logistics_sync_edge_orders_work() {
    let engine = ProcessEngine::new();
    let name = engine.deploy(scenarios::container_logistics()).unwrap();
    let id = engine.create_instance(&name).unwrap();
    let v1 = engine.repo.deployed(&name, 1).unwrap();
    let clear = v1.schema.node_by_name("customs clearance").unwrap().id;
    let load = v1.schema.node_by_name("load on vessel").unwrap().id;

    drive(&engine, id, None).unwrap();
    assert!(engine.is_finished(id).unwrap());
    let hist = engine
        .store
        .get(id)
        .unwrap()
        .state
        .history
        .started_activities();
    let pos_clear = hist.iter().position(|n| *n == clear).unwrap();
    let pos_load = hist.iter().position(|n| *n == load).unwrap();
    assert!(
        pos_clear < pos_load,
        "sync edge must force clearance before loading"
    );
}

#[test]
fn migration_works_under_all_storage_strategies() {
    for strategy in [
        Representation::RedundantFree,
        Representation::FullCopy,
        Representation::Hybrid,
    ] {
        let engine = ProcessEngine::with_strategy(strategy);
        let name = engine.deploy(scenarios::order_process()).unwrap();
        let v1 = engine.repo.deployed(&name, 1).unwrap();

        // 20 instances, 5 of them biased (disjoint from ΔT).
        let get = v1.schema.node_by_name("get order").unwrap().id;
        let collect = v1.schema.node_by_name("collect data").unwrap().id;
        for k in 0..20u64 {
            let id = engine.create_instance(&name).unwrap();
            if k % 4 == 0 {
                adhoc(
                    &engine,
                    id,
                    &adept_core::ChangeOp::SerialInsert {
                        activity: adept_core::NewActivity::named("check customer"),
                        pred: get,
                        succ: collect,
                    },
                )
                .unwrap();
            }
            let mut driver = RandomDriver::new(k);
            drive_with(&engine, id, &mut driver, Some(1)).unwrap();
        }

        evolve(&engine, &name, &[scenarios::fig1_insert_op(&v1.schema)]).unwrap();
        let report = engine
            .migrate_all(&name, &MigrationOptions::default(), 2)
            .unwrap();
        assert_eq!(report.total(), 20, "{strategy:?}");
        assert_eq!(
            report.migrated(),
            20,
            "{strategy:?}: early instances with disjoint bias all migrate\n{report}"
        );

        // All instances still finish after migration.
        for id in engine.store.instances_of(&name) {
            let mut driver = RandomDriver::new(id.raw());
            drive_with(&engine, id, &mut driver, Some(200)).unwrap();
            assert!(engine.is_finished(id).unwrap(), "{strategy:?} {id}");
        }
    }
}

#[test]
fn multi_hop_migration_through_versions() {
    let engine = ProcessEngine::new();
    let name = engine.deploy(scenarios::order_process()).unwrap();
    let id = engine.create_instance(&name).unwrap();
    let v1 = engine.repo.deployed(&name, 1).unwrap();

    // Three successive evolutions.
    evolve(&engine, &name, &[scenarios::fig1_insert_op(&v1.schema)]).unwrap();
    let s2 = engine.repo.deployed(&name, 2).unwrap();
    let sq = s2.schema.node_by_name("send questions").unwrap().id;
    evolve(&engine, &name, &[scenarios::fig1_sync_op(&s2.schema, sq)]).unwrap();
    let s3 = engine.repo.deployed(&name, 3).unwrap();
    let deliver = s3.schema.node_by_name("deliver goods").unwrap().id;
    let end_pred = deliver;
    let end = s3.schema.end_node();
    evolve(
        &engine,
        &name,
        &[adept_core::ChangeOp::SerialInsert {
            activity: adept_core::NewActivity::named("archive order"),
            pred: end_pred,
            succ: end,
        }],
    )
    .unwrap();

    let report = engine
        .migrate_all(&name, &MigrationOptions::default(), 1)
        .unwrap();
    assert_eq!(report.migrated(), 1, "{report}");
    assert_eq!(engine.store.get(id).unwrap().version, 4);

    drive(&engine, id, None).unwrap();
    assert!(engine.is_finished(id).unwrap());
    let hist = engine.store.get(id).unwrap();
    let names: Vec<String> = {
        let schema = engine.store.schema_of(&engine.repo, id).unwrap();
        hist.state
            .history
            .started_activities()
            .iter()
            .filter_map(|n| schema.node(*n).ok().map(|x| x.name.clone()))
            .collect()
    };
    assert!(names.contains(&"send questions".to_string()), "{names:?}");
    assert!(names.contains(&"archive order".to_string()), "{names:?}");
}

#[test]
fn monitor_captures_the_full_story() {
    let engine = ProcessEngine::new();
    let name = engine.deploy(scenarios::order_process()).unwrap();
    let id = engine.create_instance(&name).unwrap();
    let v1 = engine.repo.deployed(&name, 1).unwrap();
    adhoc(&engine, id, &scenarios::fig1_i2_bias_op(&v1.schema)).unwrap();
    evolve(&engine, &name, &[scenarios::fig1_insert_op(&v1.schema)]).unwrap();
    engine
        .migrate_all(&name, &MigrationOptions::default(), 1)
        .unwrap();
    let events = engine.monitor.events();
    let kinds: Vec<&'static str> = events
        .iter()
        .map(|(_, e)| match e {
            EngineEvent::Deployed { .. } => "deploy",
            EngineEvent::InstanceCreated { .. } => "create",
            EngineEvent::AdHocChanged { .. } => "adhoc",
            EngineEvent::TypeEvolved { .. } => "evolve",
            EngineEvent::Migrated { .. } => "migrate",
            EngineEvent::MigrationRejected { .. } => "reject",
            _ => "other",
        })
        .collect();
    assert!(kinds.contains(&"deploy"));
    assert!(kinds.contains(&"create"));
    assert!(kinds.contains(&"adhoc"));
    assert!(kinds.contains(&"evolve"));
    // The biased instance migrates here: its bias (sync confirm->compose)
    // does not conflict with the insert alone.
    assert!(kinds.contains(&"migrate") || kinds.contains(&"reject"));
    let log = engine.monitor.render_log();
    assert!(log.contains("ad-hoc change"));
}

#[test]
fn execution_invariants_on_population() {
    // Executed instances never leave activities Running/Activated once
    // finished, and XOR blocks execute exactly one branch.
    let schema = adept_simgen::generate_schema(&adept_simgen::GenParams::sized(18), 4242);
    let ex = adept_state::Execution::new(&schema).unwrap();
    for st in adept_simgen::generate_finished_population(&ex, 25, 9) {
        assert!(ex.is_finished(&st));
        for (n, s) in st.marking.marked_nodes() {
            assert!(
                matches!(s, NodeState::Completed | NodeState::Skipped),
                "finished instance has {n} in state {s}"
            );
        }
    }
}
