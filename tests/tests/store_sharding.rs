//! Observational equivalence of the sharded instance store.
//!
//! Two engines run the **identical** generated lifecycle — creations,
//! driven execution, ad-hoc change attempts, evolutions + full-population
//! migrations, removals — one on the default 16-way sharded store, one on
//! `InstanceStore::with_shards(_, 1)` (the old single-map layout). Every
//! observable of the store must agree afterwards: ids, per-instance
//! content, the per-type secondary index, access-stats totals, the memory
//! breakdown, and the persistence snapshot (byte-identical JSON) plus its
//! restore round-trip.

use adept_engine::ProcessEngine;
use adept_model::InstanceId;
use adept_simgen::{scenarios, RandomDriver};
use adept_storage::{to_json, InstanceStore, Representation, SchemaRepository};
use adept_tests::{adhoc, drive_with, evolve};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn engine_with_shards(shards: usize) -> (ProcessEngine, String) {
    let engine = ProcessEngine::from_parts(
        SchemaRepository::new(),
        InstanceStore::with_shards(Representation::Hybrid, shards),
    );
    let name = engine.deploy(scenarios::order_process()).unwrap();
    (engine, name)
}

/// Applies one lifecycle step, deterministically derived from `rng`, to
/// one engine. Returns a short result tag so the caller can assert both
/// engines reacted identically.
fn apply_step(
    engine: &ProcessEngine,
    name: &str,
    ids: &mut Vec<InstanceId>,
    action: u8,
    pick: usize,
    step_seed: u64,
) -> String {
    match action {
        // Create.
        0 | 1 => {
            let id = engine.create_instance(name).unwrap();
            ids.push(id);
            format!("created {id}")
        }
        // Drive a random instance a couple of steps.
        2..=4 => {
            let Some(id) = ids.get(pick % ids.len().max(1)).copied() else {
                return "noop".into();
            };
            let mut driver = RandomDriver::new(step_seed);
            match drive_with(engine, id, &mut driver, Some(1 + (step_seed % 3) as usize)) {
                Ok(o) => format!(
                    "drove {id}: {} completed, finished={}",
                    o.completed, o.finished
                ),
                Err(e) => format!("drive {id} failed: {e}"),
            }
        }
        // Attempt an ad-hoc bias (the Fig. 1 I2 sync edge). May be
        // rejected by state — both engines must reject identically.
        5 => {
            let Some(id) = ids.get(pick % ids.len().max(1)).copied() else {
                return "noop".into();
            };
            let version = engine.store.get(id).unwrap().version;
            let schema = &engine.repo.deployed(name, version).unwrap().schema;
            let op = scenarios::fig1_i2_bias_op(schema);
            match adhoc(engine, id, &op) {
                Ok(r) => format!("biased {id} ({} ops)", r.ops),
                Err(e) => format!("bias {id} rejected: {e}"),
            }
        }
        // Evolve the type and migrate the whole population. Repeated
        // evolutions may fail (the Fig. 1 delta only applies once to a
        // given shape) — both engines must fail identically.
        6 => {
            let latest = engine.repo.latest_version(name).unwrap();
            let schema = engine.repo.deployed(name, latest).unwrap().schema.clone();
            if schema.node_by_name("send questions").is_some() {
                // The Fig. 1 delta only applies to the original shape
                // (its dry run would panic on a re-application).
                return "evolve skipped (already evolved)".into();
            }
            let ops = scenarios::fig1_delta_ops(&schema);
            match evolve(engine, name, &ops) {
                Err(e) => format!("evolve failed: {e}"),
                Ok(v) => {
                    let report = engine
                        .migrate_all(name, &adept_core::MigrationOptions::default(), 1)
                        .unwrap();
                    format!(
                        "evolved to V{v}; migrated {} of {} ({} failed)",
                        report.migrated(),
                        report.total(),
                        report.failed()
                    )
                }
            }
        }
        // Remove an instance.
        _ => {
            let Some(id) = ids.get(pick % ids.len().max(1)).copied() else {
                return "noop".into();
            };
            ids.retain(|i| *i != id);
            match engine.remove_instance(id) {
                Ok(inst) => format!(
                    "removed {id} (V{}, biased={})",
                    inst.version,
                    inst.is_biased()
                ),
                Err(e) => format!("remove {id} failed: {e}"),
            }
        }
    }
}

/// Compares every observable of the two stores.
fn assert_equivalent(a: &ProcessEngine, b: &ProcessEngine, name: &str, context: &str) {
    assert_eq!(a.store.len(), b.store.len(), "len {context}");
    assert_eq!(a.store.ids(), b.store.ids(), "ids {context}");
    assert_eq!(
        a.store.instances_of(name),
        b.store.instances_of(name),
        "type index {context}"
    );
    for id in a.store.ids() {
        let ia = a.store.get(id).unwrap();
        let ib = b.store.get(id).unwrap();
        assert_eq!(ia.type_name, ib.type_name, "{id} type {context}");
        assert_eq!(ia.version, ib.version, "{id} version {context}");
        assert_eq!(ia.bias, ib.bias, "{id} bias {context}");
        assert_eq!(ia.state, ib.state, "{id} state {context}");
        assert_eq!(
            a.store.schema_of(&a.repo, id).as_deref(),
            b.store.schema_of(&b.repo, id).as_deref(),
            "{id} schema {context}"
        );
    }
    assert_eq!(a.store.stats(), b.store.stats(), "stats totals {context}");
    assert_eq!(
        a.store.memory(&a.repo),
        b.store.memory(&b.repo),
        "memory breakdown {context}"
    );
    // Snapshots must be byte-identical, and the sharded snapshot must
    // restore into an equivalent engine.
    let snap_a = a.snapshot();
    let snap_b = b.snapshot();
    assert_eq!(
        to_json(&snap_a).unwrap(),
        to_json(&snap_b).unwrap(),
        "snapshot {context}"
    );
    let restored = ProcessEngine::from_snapshot(&snap_a).unwrap();
    assert_eq!(restored.store.ids(), a.store.ids(), "restore ids {context}");
    for id in a.store.ids() {
        let ia = a.store.get(id).unwrap();
        let ir = restored.store.get(id).unwrap();
        assert_eq!(ia.version, ir.version, "restore {id} version {context}");
        assert_eq!(ia.bias, ir.bias, "restore {id} bias {context}");
        assert_eq!(ia.state, ir.state, "restore {id} state {context}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        ..ProptestConfig::default()
    })]

    /// The sharded store is observationally equivalent to the single-map
    /// store under generated lifecycles.
    #[test]
    fn sharded_store_equivalent_to_single_map(
        seed in 0u64..10_000,
        steps in 8usize..32,
    ) {
        let (sharded, name_a) = engine_with_shards(16);
        let (single, name_b) = engine_with_shards(1);
        prop_assert_eq!(&name_a, &name_b, "deployment must name identically");
        let name = name_a;
        prop_assert_eq!(sharded.store.shard_count(), 16);
        prop_assert_eq!(single.store.shard_count(), 1);

        let mut rng = SmallRng::seed_from_u64(seed);
        let mut ids_a: Vec<InstanceId> = Vec::new();
        let mut ids_b: Vec<InstanceId> = Vec::new();
        for step in 0..steps {
            let action = rng.gen_range(0u8..8);
            let pick = rng.gen_range(0usize..1_000);
            let step_seed = rng.gen::<u64>();
            let ra = apply_step(&sharded, &name, &mut ids_a, action, pick, step_seed);
            let rb = apply_step(&single, &name, &mut ids_b, action, pick, step_seed);
            prop_assert_eq!(
                &ra, &rb,
                "step {} (action {}, seed {}) diverged", step, action, seed
            );
            prop_assert_eq!(&ids_a, &ids_b, "allocated ids diverged at step {}", step);
        }
        assert_equivalent(&sharded, &single, &name, &format!("(seed {seed}, {steps} steps)"));
    }
}

/// The worklist served over the sharded store equals the full recompute
/// after a lifecycle touching every mutation path (spot check outside the
/// property harness).
#[test]
fn worklist_consistent_over_sharded_population() {
    let (engine, name) = engine_with_shards(16);
    for k in 0..50u64 {
        let id = engine.create_instance(&name).unwrap();
        let mut driver = RandomDriver::new(k);
        drive_with(&engine, id, &mut driver, Some((k % 4) as usize)).unwrap();
    }
    let mut full: Vec<String> = engine
        .worklist_full()
        .into_iter()
        .map(|w| format!("{w}"))
        .collect();
    let mut indexed: Vec<String> = engine
        .worklist()
        .into_iter()
        .map(|w| format!("{w}"))
        .collect();
    full.sort();
    indexed.sort();
    assert_eq!(indexed, full);
}
