//! Worklist semantics and the incremental index:
//!
//! * role claiming (`claimable_by`, empty role = anyone) and
//!   `worklist_for` filtering;
//! * index consistency — the incrementally maintained worklist equals the
//!   full recompute after every lifecycle event (commands, ad-hoc change
//!   commits, migration, completion), property-checked over generated
//!   simgen scenarios;
//! * corruption surfacing — unresolvable instances produce monitor
//!   diagnostics from `worklist()` and an error from `try_worklist()`.

use adept_core::ChangeOp;
use adept_engine::{EngineError, EngineEvent, ProcessEngine, WorkItem};
use adept_simgen::{scenarios, RandomDriver};
use adept_tests::{adhoc, drive, drive_with, evolve};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Canonical, order-independent rendering of a worklist for comparison.
fn canon(mut items: Vec<WorkItem>) -> Vec<String> {
    items.sort_by_key(|w| (w.instance.raw(), w.node.raw()));
    items
        .into_iter()
        .map(|w| {
            format!(
                "{}:{}:{}:{}:{}:{}",
                w.instance,
                w.node,
                w.activity,
                w.role.as_deref().unwrap_or("<anyone>"),
                w.type_name,
                w.version
            )
        })
        .collect()
}

/// Asserts the incremental index serves exactly what a full recompute
/// produces.
fn assert_index_consistent(engine: &ProcessEngine, context: &str) {
    assert_eq!(
        canon(engine.worklist()),
        canon(engine.worklist_full()),
        "index diverged from full recompute {context}"
    );
}

#[test]
fn role_claiming_and_filtering() {
    let engine = ProcessEngine::new();
    let name = engine.deploy(scenarios::order_process()).unwrap();
    let id = engine.create_instance(&name).unwrap();

    // "get order" carries the sales role.
    assert_eq!(engine.worklist_for("sales").len(), 1);
    assert_eq!(engine.worklist_for("warehouse").len(), 0);

    // One step later, "collect data" has no role: claimable by anyone.
    drive(&engine, id, Some(1)).unwrap();
    let wl = engine.worklist();
    assert_eq!(wl.len(), 1);
    assert!(wl[0].role.is_none());
    assert!(wl[0].claimable_by("sales"));
    assert!(wl[0].claimable_by("anyone else"));
    assert_eq!(engine.worklist_for("sales").len(), 1);
    assert_eq!(engine.worklist_for("intern").len(), 1);

    // Two steps later the AND block offers role-split parallel work.
    drive(&engine, id, Some(1)).unwrap();
    assert_eq!(engine.worklist_for("sales").len(), 1, "confirm order");
    assert_eq!(engine.worklist_for("warehouse").len(), 1, "compose order");
    assert_index_consistent(&engine, "mid-execution");
}

#[test]
fn index_consistent_through_change_migration_and_completion() {
    let engine = ProcessEngine::new();
    let name = engine.deploy(scenarios::order_process()).unwrap();
    let v1 = engine.repo.deployed(&name, 1).unwrap();
    let ids: Vec<_> = (0..8)
        .map(|_| engine.create_instance(&name).unwrap())
        .collect();
    assert_index_consistent(&engine, "after creation");

    // Commands at different progress points.
    for (k, id) in ids.iter().enumerate() {
        drive(&engine, *id, Some(k % 4)).unwrap();
    }
    assert_index_consistent(&engine, "after partial drives");

    // Ad-hoc change commit: the inserted activity appears on the worklist
    // of the biased instance only.
    let get = v1.schema.node_by_name("get order").unwrap().id;
    let collect = v1.schema.node_by_name("collect data").unwrap().id;
    adhoc(
        &engine,
        ids[0],
        &ChangeOp::SerialInsert {
            activity: adept_core::NewActivity::named("vet customer").with_role("compliance"),
            pred: get,
            succ: collect,
        },
    )
    .unwrap();
    assert_index_consistent(&engine, "after ad-hoc commit");

    // Undo: back to the deployed shape.
    engine.undo_ad_hoc_change(ids[0]).unwrap();
    assert_index_consistent(&engine, "after undo");

    // Evolution + migration rebase compliant instances.
    evolve(&engine, &name, &[scenarios::fig1_insert_op(&v1.schema)]).unwrap();
    engine.migrate_all(&name, &Default::default(), 2).unwrap();
    assert_index_consistent(&engine, "after migration");

    // Completion empties the affected entries.
    for id in &ids {
        drive(&engine, *id, None).unwrap();
    }
    assert_index_consistent(&engine, "after completion");
    assert!(engine.worklist().is_empty());
}

#[test]
fn unresolvable_instances_are_surfaced_not_hidden() {
    let engine = ProcessEngine::new();
    let name = engine.deploy(scenarios::order_process()).unwrap();
    engine.create_instance(&name).unwrap();

    // Corrupt entry: an instance of a type the repository does not know.
    let dep = engine.repo.deployed(&name, 1).unwrap();
    let ghost_state = dep.execution().init().unwrap();
    let ghost = engine.store.create("ghost type", 1, ghost_state);

    // Lenient worklist still serves the healthy instance, but records a
    // diagnostic instead of silently skipping.
    let before = engine.monitor.len();
    let wl = engine.worklist();
    assert_eq!(wl.len(), 1, "healthy instance still offered");
    let logged = engine.monitor.events()[before..]
        .iter()
        .any(|(_, e)| matches!(e, EngineEvent::WorklistResolutionFailed { instance, .. } if *instance == ghost));
    assert!(logged, "corruption must reach the monitor");

    // The strict variant fails fast.
    let err = engine.try_worklist().unwrap_err();
    assert!(matches!(err, EngineError::NotFound(_)), "{err}");
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    /// Index == full recompute across randomized lifecycles on generated
    /// schemas: random drives through the command path, random staged
    /// ad-hoc changes, an evolution + migration round, and completion.
    #[test]
    fn index_matches_recompute_on_generated_scenarios(seed in 0u64..10_000) {
        let schema = adept_simgen::generate_schema(&adept_simgen::GenParams::sized(12), seed);
        let engine = ProcessEngine::new();
        let name = engine.deploy(schema).unwrap();
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x5eed_1157);

        let ids: Vec<_> = (0..6).map(|_| engine.create_instance(&name).unwrap()).collect();
        prop_assert_eq!(canon(engine.worklist()), canon(engine.worklist_full()));

        // Random partial drives (commands maintain the index).
        for id in &ids {
            let mut driver = RandomDriver::new(seed ^ id.raw());
            let steps = rng.gen_range(0..6);
            drive_with(&engine, *id, &mut driver, Some(steps)).unwrap();
        }
        prop_assert_eq!(canon(engine.worklist()), canon(engine.worklist_full()));

        // A random staged change on one instance (commit invalidates).
        let target = ids[rng.gen_range(0..ids.len())];
        let current = engine.store.schema_of(&engine.repo, target).unwrap();
        for kind in adept_simgen::ALL_OP_KINDS {
            if let Some(op) = adept_simgen::changegen::propose(&current, kind, &mut rng, "p") {
                let _ = adhoc(&engine, target, &op); // state conflicts are fine
                break;
            }
        }
        prop_assert_eq!(canon(engine.worklist()), canon(engine.worklist_full()));

        // Evolution + migration (migration invalidates migrated entries).
        let latest = engine.repo.deployed(&name, 1).unwrap();
        let mut erng = SmallRng::seed_from_u64(seed ^ 0xeee);
        if let Some(op) = adept_simgen::changegen::propose(
            &latest.schema,
            adept_simgen::OpKind::SerialInsert,
            &mut erng,
            "evo",
        ) {
            if evolve(&engine, &name, &[op]).is_ok() {
                engine.migrate_all(&name, &Default::default(), 1).unwrap();
            }
        }
        prop_assert_eq!(canon(engine.worklist()), canon(engine.worklist_full()));

        // Drive everything home; finished instances offer nothing.
        for id in &ids {
            let mut driver = RandomDriver::new(seed ^ (id.raw() << 8));
            let _ = drive_with(&engine, *id, &mut driver, Some(400));
        }
        prop_assert_eq!(canon(engine.worklist()), canon(engine.worklist_full()));
    }
}
