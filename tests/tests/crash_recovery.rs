//! Crash recovery: the durable engine's snapshot + WAL replay must
//! reproduce the uninterrupted run **byte for byte**.
//!
//! The property harness runs a generated lifecycle — creations, driven
//! execution, ad-hoc change attempts, evolutions + full-population
//! migrations, removals — on a durable engine, snapshots at a random
//! prefix, then "crashes" (drops the engine) and recovers twice: from
//! the prefix snapshot + WAL tail, and from the WAL alone. Both
//! recovered engines must serialise to the exact JSON the uninterrupted
//! engine produced. The fixtures cover the crash semantics: a torn
//! final record is truncated (on both backends), a corrupted interior
//! record is a hard error, a checkpoint truncates the log only after
//! the snapshot is safe, and a literal kill-9-style `abort()` in a
//! child process recovers to the last complete record.

use adept_engine::{recovery, EngineError, ProcessEngine};
use adept_model::InstanceId;
use adept_simgen::{scenarios, RandomDriver};
use adept_storage::{from_json, to_json, FileBackend, MemoryBackend, StorageError, SyncPolicy};
use adept_tests::{adhoc, drive_with, evolve};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A collision-free scratch path (no tempfile dependency): pid + counter.
fn temp_wal_path(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("adept-crash-{}-{tag}-{n}.wal", std::process::id()))
}

fn durable_engine(backend: Box<dyn adept_storage::StorageBackend>) -> (ProcessEngine, String) {
    let engine = ProcessEngine::with_wal(backend).unwrap();
    let name = engine.deploy(scenarios::order_process()).unwrap();
    (engine, name)
}

/// One lifecycle step, deterministically derived from the inputs (the
/// same action vocabulary as the store-sharding equivalence suite).
fn apply_step(
    engine: &ProcessEngine,
    name: &str,
    ids: &mut Vec<InstanceId>,
    action: u8,
    pick: usize,
    step_seed: u64,
) {
    match action {
        0 | 1 => {
            let id = engine.create_instance(name).unwrap();
            ids.push(id);
        }
        2..=4 => {
            let Some(id) = ids.get(pick % ids.len().max(1)).copied() else {
                return;
            };
            let mut driver = RandomDriver::new(step_seed);
            let _ = drive_with(engine, id, &mut driver, Some(1 + (step_seed % 3) as usize));
        }
        5 => {
            let Some(id) = ids.get(pick % ids.len().max(1)).copied() else {
                return;
            };
            let version = engine.store.get(id).unwrap().version;
            let schema = &engine.repo.deployed(name, version).unwrap().schema;
            let op = scenarios::fig1_i2_bias_op(schema);
            let _ = adhoc(engine, id, &op);
        }
        6 => {
            let latest = engine.repo.latest_version(name).unwrap();
            let schema = engine.repo.deployed(name, latest).unwrap().schema.clone();
            if schema.node_by_name("send questions").is_some() {
                return; // the Fig. 1 delta only applies to the base shape
            }
            let ops = scenarios::fig1_delta_ops(&schema);
            if evolve(engine, name, &ops).is_ok() {
                let _ = engine.migrate_all(name, &adept_core::MigrationOptions::default(), 1);
            }
        }
        _ => {
            let Some(id) = ids.get(pick % ids.len().max(1)).copied() else {
                return;
            };
            ids.retain(|i| *i != id);
            let _ = engine.remove_instance(id);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8,
        ..ProptestConfig::default()
    })]

    /// Snapshot-at-random-prefix + WAL-tail replay (and WAL-only replay)
    /// reproduce the uninterrupted engine byte for byte, on both
    /// backends.
    #[test]
    fn recovery_reproduces_uninterrupted_run(
        seed in 0u64..10_000,
        steps in 6usize..20,
        prefix in 0usize..20,
    ) {
        for file_backed in [false, true] {
            let medium = MemoryBackend::new();
            let path = temp_wal_path("prop");
            let backend: Box<dyn adept_storage::StorageBackend> = if file_backed {
                Box::new(FileBackend::with_policy(&path, SyncPolicy::Never))
            } else {
                Box::new(medium.clone())
            };
            let (engine, name) = durable_engine(backend);

            let mut rng = SmallRng::seed_from_u64(seed);
            let mut ids: Vec<InstanceId> = Vec::new();
            let mut mid_snapshot = engine.snapshot();
            let snapshot_at = prefix % steps;
            for step in 0..steps {
                let action = rng.gen_range(0u8..8);
                let pick = rng.gen_range(0usize..1_000);
                let step_seed = rng.gen::<u64>();
                apply_step(&engine, &name, &mut ids, action, pick, step_seed);
                if step == snapshot_at {
                    mid_snapshot = engine.snapshot();
                }
            }
            let final_json = to_json(&engine.snapshot()).unwrap();
            drop(engine); // crash: only the journaled log survives

            let reopen = || -> Box<dyn adept_storage::StorageBackend> {
                if file_backed {
                    Box::new(FileBackend::with_policy(&path, SyncPolicy::Never))
                } else {
                    Box::new(medium.clone())
                }
            };
            // Snapshot + WAL tail.
            let (rec, _) = recovery::recover_from(Some(&mid_snapshot), reopen()).unwrap();
            prop_assert_eq!(
                &to_json(&rec.snapshot()).unwrap(),
                &final_json,
                "snapshot+tail recovery diverged (seed {}, file={})", seed, file_backed
            );
            // WAL alone, from the first record.
            let (rec2, _) = recovery::recover(reopen()).unwrap();
            prop_assert_eq!(
                &to_json(&rec2.snapshot()).unwrap(),
                &final_json,
                "wal-only recovery diverged (seed {}, file={})", seed, file_backed
            );
            if file_backed {
                std::fs::remove_file(&path).ok();
            }
        }
    }
}

#[test]
fn torn_tail_is_truncated_on_recovery() {
    let medium = MemoryBackend::new();
    let (engine, name) = durable_engine(Box::new(medium.clone()));
    let survivor = engine.create_instance(&name).unwrap();
    let expected_json = to_json(&engine.snapshot()).unwrap();
    let torn = engine.create_instance(&name).unwrap();
    drop(engine);

    // kill -9 mid-append: the final record loses its tail bytes.
    let raw = medium.raw();
    medium.set_raw(&raw[..raw.len() - 5]);

    let (rec, report) = recovery::recover(Box::new(medium)).unwrap();
    assert!(
        report.torn_tail_bytes > 0,
        "the torn record must be counted"
    );
    assert!(rec.store.get(survivor).is_some());
    assert!(
        rec.store.get(torn).is_none(),
        "a torn record must not half-apply"
    );
    assert_eq!(
        to_json(&rec.snapshot()).unwrap(),
        expected_json,
        "recovery lands exactly on the last complete record"
    );
}

#[test]
fn file_backend_torn_tail_is_repaired_on_disk() {
    let path = temp_wal_path("torn-file");
    {
        let (engine, name) = durable_engine(Box::new(FileBackend::new(&path)));
        engine.create_instance(&name).unwrap();
        engine.create_instance(&name).unwrap();
    }
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();

    let (rec, report) = recovery::recover(Box::new(FileBackend::new(&path))).unwrap();
    // The torn tail is the whole partial record after the last newline.
    assert!(report.torn_tail_bytes > 0);
    assert_eq!(rec.store.len(), 1);
    // The repair happened on the medium: the file ends at the last
    // complete record, so a second recovery sees a clean log.
    let repaired = std::fs::read(&path).unwrap();
    assert!(repaired.ends_with(b"\n"));
    assert!(repaired.len() < bytes.len());
    std::fs::remove_file(&path).ok();
}

#[test]
fn interior_corruption_is_a_hard_error() {
    let medium = MemoryBackend::new();
    let (engine, name) = durable_engine(Box::new(medium.clone()));
    engine.create_instance(&name).unwrap();
    engine.create_instance(&name).unwrap();
    drop(engine);

    let raw = String::from_utf8(medium.raw()).unwrap();
    let mut lines: Vec<&str> = raw.lines().collect();
    assert!(lines.len() >= 3);
    // A *complete* but undecodable record mid-log: bit rot, not a crash.
    lines[1] = "this is not a wal record";
    let corrupted = lines.join("\n") + "\n";
    medium.set_raw(corrupted.as_bytes());

    let err = recovery::recover(Box::new(medium)).unwrap_err();
    assert!(
        matches!(err, EngineError::Storage(StorageError::Corrupt { .. })),
        "mid-log corruption must refuse recovery, got: {err}"
    );
}

#[test]
fn checkpoint_truncates_wal_and_recovery_resumes_from_it() {
    let medium = MemoryBackend::new();
    let (engine, name) = durable_engine(Box::new(medium.clone()));
    let id = engine.create_instance(&name).unwrap();
    let mut driver = RandomDriver::new(7);
    drive_with(&engine, id, &mut driver, Some(2)).unwrap();

    let mut saved: Option<String> = None;
    engine
        .checkpoint_with(|s| {
            saved = Some(to_json(s)?);
            Ok(())
        })
        .unwrap();
    assert!(
        medium.raw().is_empty(),
        "a successful checkpoint truncates the log"
    );

    // Post-checkpoint work lands in the (fresh) log with continued seqs.
    engine.create_instance(&name).unwrap();
    let final_json = to_json(&engine.snapshot()).unwrap();
    drop(engine);

    let snap = from_json(&saved.unwrap()).unwrap();
    let (rec, report) = recovery::recover_from(Some(&snap), Box::new(medium.clone())).unwrap();
    assert_eq!(report.skipped, 0);
    assert_eq!(to_json(&rec.snapshot()).unwrap(), final_json);

    // Without the snapshot the truncated log has a hole at its start —
    // recovery must refuse rather than rebuild a partial world.
    let err = recovery::recover(Box::new(medium)).unwrap_err();
    assert!(
        matches!(err, EngineError::Storage(StorageError::Corrupt { .. })),
        "recovering a truncated log without its snapshot must fail, got: {err}"
    );
}

#[test]
fn failed_checkpoint_persist_keeps_the_wal() {
    let medium = MemoryBackend::new();
    let (engine, name) = durable_engine(Box::new(medium.clone()));
    engine.create_instance(&name).unwrap();
    let before = medium.raw();
    let err = engine
        .checkpoint_with(|_| {
            Err(StorageError::io(
                "persist",
                &std::io::Error::other("disk full"),
            ))
        })
        .unwrap_err();
    assert!(matches!(err, EngineError::Storage(StorageError::Io { .. })));
    assert_eq!(
        medium.raw(),
        before,
        "a failed persist must not drop the log"
    );
}

// ---------------------------------------------------------------------
// Segmented WAL: merged recovery, per-segment torn tails, lost segments
// ---------------------------------------------------------------------

/// Four in-memory segments, so each one is inspectable after the crash.
fn segmented_mediums(n: usize) -> Vec<MemoryBackend> {
    (0..n).map(|_| MemoryBackend::new()).collect()
}

fn boxed(mediums: &[MemoryBackend]) -> Vec<Box<dyn adept_storage::StorageBackend>> {
    mediums
        .iter()
        .map(|m| Box::new(m.clone()) as Box<dyn adept_storage::StorageBackend>)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6,
        ..ProptestConfig::default()
    })]

    /// The segmented journal recovers byte-identical to the uninterrupted
    /// run: the same generated lifecycle runs on a 4-segment engine, the
    /// segments are merged on recovery (snapshot + tail AND WAL alone),
    /// and both recovered engines serialise to the exact same JSON.
    #[test]
    fn segmented_recovery_reproduces_uninterrupted_run(
        seed in 0u64..10_000,
        steps in 6usize..16,
        prefix in 0usize..16,
    ) {
        let mediums = segmented_mediums(4);
        let engine = ProcessEngine::with_segmented_wal(boxed(&mediums)).unwrap();
        let name = engine.deploy(scenarios::order_process()).unwrap();

        let mut rng = SmallRng::seed_from_u64(seed);
        let mut ids: Vec<InstanceId> = Vec::new();
        let mut mid_snapshot = engine.snapshot();
        let snapshot_at = prefix % steps;
        for step in 0..steps {
            let action = rng.gen_range(0u8..8);
            let pick = rng.gen_range(0usize..1_000);
            let step_seed = rng.gen::<u64>();
            apply_step(&engine, &name, &mut ids, action, pick, step_seed);
            if step == snapshot_at {
                mid_snapshot = engine.snapshot();
            }
        }
        let final_json = to_json(&engine.snapshot()).unwrap();
        // The appends really spread: with several records, more than one
        // segment must hold data (round-robin by sequence).
        let populated = mediums.iter().filter(|m| !m.raw().is_empty()).count();
        prop_assert!(populated > 1, "appends did not spread across segments");
        drop(engine); // crash: only the journaled segments survive

        let (rec, _) =
            recovery::recover_from_segmented(Some(&mid_snapshot), boxed(&mediums)).unwrap();
        prop_assert_eq!(
            &to_json(&rec.snapshot()).unwrap(),
            &final_json,
            "segmented snapshot+tail recovery diverged (seed {})", seed
        );
        let (rec2, _) = recovery::recover_segmented(boxed(&mediums)).unwrap();
        prop_assert_eq!(
            &to_json(&rec2.snapshot()).unwrap(),
            &final_json,
            "segmented wal-only recovery diverged (seed {})", seed
        );
    }
}

/// A torn tail in ONE segment — the crash hit mid-append of the globally
/// last record — truncates that record only; the siblings' records all
/// survive and the world lands exactly on the last complete record.
#[test]
fn segmented_torn_tail_in_one_segment_only() {
    let mediums = segmented_mediums(2);
    let engine = ProcessEngine::with_segmented_wal(boxed(&mediums)).unwrap();
    let name = engine.deploy(scenarios::order_process()).unwrap();
    let survivor = engine.create_instance(&name).unwrap();
    let expected_json = to_json(&engine.snapshot()).unwrap();
    let torn = engine.create_instance(&name).unwrap();
    // The globally-last record (seq = position()) lives in exactly one
    // segment: seq → segment (seq - 1) mod 2.
    let last_seq = engine.wal().position();
    let torn_segment = ((last_seq - 1) % 2) as usize;
    drop(engine);

    let raw = mediums[torn_segment].raw();
    mediums[torn_segment].set_raw(&raw[..raw.len() - 5]);

    let (rec, report) = recovery::recover_segmented(boxed(&mediums)).unwrap();
    assert!(report.torn_tail_bytes > 0);
    assert!(rec.store.get(survivor).is_some());
    assert!(
        rec.store.get(torn).is_none(),
        "a torn record must not half-apply"
    );
    assert_eq!(
        to_json(&rec.snapshot()).unwrap(),
        expected_json,
        "recovery lands exactly on the last complete record"
    );
}

/// A whole segment gone (file lost, not a crash tear) leaves periodic
/// holes spanning the whole merged sequence — far wider than the
/// crash-tail repair window — and recovery must refuse with a gap error
/// rather than rebuild a world with every Nth record missing. The
/// workload is sized so the holes span well past
/// [`recovery::TAIL_REPAIR_WINDOW`], distinguishing this from the
/// bounded tail gap a crash under concurrent appends leaves (which
/// recovery *does* repair; see
/// [`crash_tail_gap_from_concurrent_appends_is_repaired`]).
#[test]
fn missing_segment_is_a_gap_error() {
    let mediums = segmented_mediums(2);
    let engine = ProcessEngine::with_segmented_wal(boxed(&mediums)).unwrap();
    let name = engine.deploy(scenarios::order_process()).unwrap();
    for _ in 0..(2 * recovery::TAIL_REPAIR_WINDOW) {
        engine.create_instance(&name).unwrap();
    }
    drop(engine);

    for lost in 0..2usize {
        let mut backends = boxed(&mediums);
        // The lost segment reopens empty (a fresh medium), its sibling
        // intact — half the sequences are simply gone.
        backends[lost] = Box::new(MemoryBackend::new());
        let err = recovery::recover_segmented(backends).unwrap_err();
        assert!(
            matches!(err, EngineError::Storage(StorageError::Corrupt { .. })),
            "a lost segment must refuse recovery, got: {err}"
        );
    }
}

/// The crash window of concurrent segmented appends: sequence allocation
/// is decoupled from the durable write, so a crash can leave an
/// earlier-allocated record torn (or never written) in one segment while
/// a later sequence is already durable in a sibling. The resulting
/// bounded tail gap must be repaired — truncating back to the last
/// contiguous record — not refused as corruption, and the repair must be
/// physical so a second recovery sees a clean log.
#[test]
fn crash_tail_gap_from_concurrent_appends_is_repaired() {
    let mediums = segmented_mediums(2);
    let engine = ProcessEngine::with_segmented_wal(boxed(&mediums)).unwrap();
    let name = engine.deploy(scenarios::order_process()).unwrap();
    let survivor = engine.create_instance(&name).unwrap();
    let expected_json = to_json(&engine.snapshot()).unwrap();
    // Two more records: seq 3 → segment 0, seq 4 → segment 1.
    let torn = engine.create_instance(&name).unwrap();
    let stranded = engine.create_instance(&name).unwrap();
    assert_eq!(engine.wal().position(), 4);
    drop(engine);

    // The crash: seq 3's append died mid-write (torn tail in segment 0)
    // while seq 4 had already completed in segment 1.
    let raw = mediums[0].raw();
    mediums[0].set_raw(&raw[..raw.len() - 5]);

    let (rec, report) = recovery::recover_segmented(boxed(&mediums)).unwrap();
    assert!(report.torn_tail_bytes > 0, "the tear itself is counted");
    assert_eq!(
        report.tail_dropped, 1,
        "seq 4, stranded past the gap, is truncated away"
    );
    assert_eq!(
        report.last_seq, 2,
        "the world ends at the last contiguous record"
    );
    assert!(rec.store.get(survivor).is_some());
    assert!(
        rec.store.get(torn).is_none(),
        "the torn record must not apply"
    );
    assert!(
        rec.store.get(stranded).is_none(),
        "a record past the gap was never acknowledged and must not apply"
    );
    assert_eq!(
        to_json(&rec.snapshot()).unwrap(),
        expected_json,
        "recovery lands exactly on the last contiguous record"
    );
    // The recovered engine resumes the sequence where the repair cut it.
    let next = rec.create_instance(&name).unwrap();
    assert!(rec.store.get(next).is_some());
    drop(rec);

    // The repair was physical: recovering the same mediums again finds a
    // contiguous log with nothing to drop.
    let (rec2, report2) = recovery::recover_segmented(boxed(&mediums)).unwrap();
    assert_eq!(report2.torn_tail_bytes, 0);
    assert_eq!(report2.tail_dropped, 0);
    assert!(
        rec2.store.get(next).is_some(),
        "post-repair appends survive"
    );
}

/// The same crash window with an entirely *unwritten* (not torn) earlier
/// record, recovered from a snapshot: the gap opens right at the
/// snapshot watermark, which is still a repairable crash tail — the
/// snapshot covers the base.
#[test]
fn crash_tail_gap_at_snapshot_watermark_is_repaired() {
    let mediums = segmented_mediums(2);
    let engine = ProcessEngine::with_segmented_wal(boxed(&mediums)).unwrap();
    let name = engine.deploy(scenarios::order_process()).unwrap();
    engine.create_instance(&name).unwrap();
    let snap = engine.snapshot();
    let expected_json = to_json(&snap).unwrap();
    engine.create_instance(&name).unwrap(); // seq 3 → segment 0
    engine.create_instance(&name).unwrap(); // seq 4 → segment 1
    drop(engine);

    // Seq 3 never reached its medium at all: drop segment 0's last line.
    let text = String::from_utf8(mediums[0].raw()).unwrap();
    let mut lines: Vec<&str> = text.lines().collect();
    lines.pop();
    let kept = lines.join("\n") + "\n";
    mediums[0].set_raw(kept.as_bytes());

    let (rec, report) = recovery::recover_from_segmented(Some(&snap), boxed(&mediums)).unwrap();
    assert_eq!(
        report.torn_tail_bytes, 0,
        "nothing was torn — seq 3 is simply absent"
    );
    assert_eq!(report.tail_dropped, 1, "seq 4 is truncated away");
    assert_eq!(report.last_seq, snap.wal_seq);
    assert_eq!(
        to_json(&rec.snapshot()).unwrap(),
        expected_json,
        "the world is exactly the snapshot"
    );
}

/// File-backed segments end to end: `FileBackend::segments` derives the
/// per-segment paths, the engine group-commits under `Always`, and
/// recovery reopens the same paths and merges them.
#[test]
fn file_backed_segments_recover_merged() {
    let base = temp_wal_path("seg-file");
    let open_segments = || adept_storage::FileBackend::segments(&base, 4, SyncPolicy::Always);
    let engine = ProcessEngine::with_segmented_wal(open_segments()).unwrap();
    let name = engine.deploy(scenarios::order_process()).unwrap();
    let id = engine.create_instance(&name).unwrap();
    let mut driver = RandomDriver::new(3);
    drive_with(&engine, id, &mut driver, Some(2)).unwrap();
    let final_json = to_json(&engine.snapshot()).unwrap();
    drop(engine);

    let (rec, report) = recovery::recover_segmented(open_segments()).unwrap();
    assert_eq!(report.divergent, Vec::<InstanceId>::new());
    assert_eq!(to_json(&rec.snapshot()).unwrap(), final_json);
    for i in 0..4 {
        let mut p = base.clone().into_os_string();
        p.push(format!(".seg{i:02}"));
        std::fs::remove_file(PathBuf::from(p)).ok();
    }
}

/// Child half of [`kill_and_restart_recovers`]: runs a deterministic
/// workload against a durable engine at `ADEPT_CRASH_WAL`, then dies via
/// `abort()` — no destructors, no flushes beyond the WAL's own
/// write-ahead appends. Ignored in normal runs; the parent test invokes
/// it explicitly in a child process.
#[test]
#[ignore = "helper child for kill_and_restart_recovers; aborts the process"]
fn crash_workload_child() {
    let Some(path) = std::env::var_os("ADEPT_CRASH_WAL") else {
        return; // invoked without the harness: nothing to do
    };
    let (engine, name) = durable_engine(Box::new(FileBackend::new(path)));
    for k in 0..5u64 {
        let id = engine.create_instance(&name).unwrap();
        let mut driver = RandomDriver::new(k);
        let _ = drive_with(&engine, id, &mut driver, Some(2));
    }
    std::process::abort();
}

/// Kill-and-restart: a child process runs a durable workload and is
/// killed hard (`abort`, the in-process `kill -9`); the parent recovers
/// the WAL file and must find the exact world the child had committed.
#[test]
fn kill_and_restart_recovers() {
    let path = temp_wal_path("kill9");
    let exe = std::env::current_exe().unwrap();
    let status = std::process::Command::new(exe)
        .args(["--exact", "crash_workload_child", "--ignored"])
        .env("ADEPT_CRASH_WAL", &path)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .status()
        .unwrap();
    assert!(!status.success(), "the child must die by abort");

    let (engine, report) = recovery::recover(Box::new(FileBackend::new(&path))).unwrap();
    assert_eq!(report.divergent, Vec::<InstanceId>::new());
    assert_eq!(engine.store.len(), 5, "all committed creations survive");
    let name = engine.repo.type_names().pop().unwrap();
    assert_eq!(engine.repo.latest_version(&name), Some(1));
    // The recovered engine keeps journaling to the same log.
    let id = engine.create_instance(&name).unwrap();
    assert!(engine.store.get(id).is_some());
    assert_eq!(engine.store.len(), 6);
    std::fs::remove_file(&path).ok();
}
