//! Threaded stress tests: migration racing live command traffic on the
//! sharded store.
//!
//! The paper's scenario — migrating a population "on the fly" while users
//! keep executing — is exactly the race the store's compare-and-set
//! installs (`migrate_if`, the command path's context CAS) must win. These
//! tests run `migrate_all(threads = 4)` against concurrent `submit_batch`
//! traffic and assert that every instance lands on a consistent
//! `(version, state)` pair with no lost updates, and that instances
//! removed mid-migration are reported as vanished rather than as
//! structural conflicts.

use adept_core::{ConflictKind, MigrationOptions};
use adept_engine::{EngineCommand, ProcessEngine};
use adept_model::InstanceId;
use adept_simgen::scenarios;
use adept_state::Event;
use adept_tests::evolve;

const POPULATION: usize = 192;
const SUBMITTERS: usize = 4;
const ROUNDS: usize = 6;

fn populated_engine() -> (ProcessEngine, String, Vec<InstanceId>) {
    let engine = ProcessEngine::new();
    let name = engine.deploy(scenarios::order_process()).unwrap();
    let ids: Vec<InstanceId> = (0..POPULATION)
        .map(|_| engine.create_instance(&name).unwrap())
        .collect();
    (engine, name, ids)
}

fn stage_evolution(engine: &ProcessEngine, name: &str) {
    let schema = engine.repo.deployed(name, 1).unwrap().schema.clone();
    evolve(engine, name, &scenarios::fig1_delta_ops(&schema)).unwrap();
}

/// Completed events recorded in an instance's history.
fn completions_in_history(engine: &ProcessEngine, id: InstanceId) -> usize {
    engine
        .store
        .with_instance(id, |inst| {
            inst.state
                .history
                .events
                .iter()
                .filter(|e| matches!(e, Event::Completed { .. }))
                .count()
        })
        .unwrap_or(0)
}

#[test]
fn migrate_all_races_live_submit_batch_traffic() {
    let (engine, name, ids) = populated_engine();
    stage_evolution(&engine, &name);

    let chunk = ids.len().div_ceil(SUBMITTERS);
    let mut acked: Vec<usize> = Vec::new();
    let mut reports = Vec::new();
    crossbeam::scope(|scope| {
        // Live traffic: each submitter drives its own partition forward,
        // one activity per round, through batched commands.
        let submitters: Vec<_> = ids
            .chunks(chunk)
            .map(|part| {
                let engine = &engine;
                scope.spawn(move |_| {
                    let mut completed = vec![0usize; part.len()];
                    for _ in 0..ROUNDS {
                        let cmds: Vec<EngineCommand> = part
                            .iter()
                            .map(|id| EngineCommand::Drive {
                                instance: *id,
                                max: Some(1),
                            })
                            .collect();
                        for (k, r) in engine.submit_batch(cmds).into_iter().enumerate() {
                            completed[k] += r.expect("drive on live instance").completed;
                        }
                    }
                    completed
                })
            })
            .collect();
        // The migration sweep, itself parallel, against that traffic.
        let migrator = scope.spawn(|_| {
            engine
                .migrate_all(&name, &MigrationOptions::default(), 4)
                .unwrap()
        });
        reports.push(migrator.join().unwrap());
        for h in submitters {
            acked.extend(h.join().unwrap());
        }
    })
    .unwrap();

    let report = &reports[0];
    assert_eq!(report.total(), POPULATION);
    assert_eq!(report.vanished(), 0, "nothing was removed: {report}");
    assert_eq!(
        report.conflicts(ConflictKind::Internal),
        0,
        "no worker may panic: {report}"
    );

    let latest = engine.repo.latest_version(&name).unwrap();
    for (k, id) in ids.iter().enumerate() {
        let inst = engine.store.get(*id).expect("instance survived");
        // Consistent (version, state): the version is a deployed one and
        // the instance's schema context resolves and matches its state —
        // a torn migrate/command interleaving would leave a bias or state
        // belonging to a different version.
        assert!(
            inst.version == 1 || inst.version == latest,
            "{id} on unexpected version {}",
            inst.version
        );
        assert!(
            engine.store.schema_of(&engine.repo, *id).is_some(),
            "{id} schema must resolve"
        );
        // No lost updates: every acknowledged completion is in the
        // history (migration adapts markings but never drops history).
        let in_history = completions_in_history(&engine, *id);
        assert!(
            in_history >= acked[k],
            "{id} lost updates: {} acked but {} in history",
            acked[k],
            in_history
        );
    }

    // The incremental worklist index survived the race coherently.
    let mut indexed: Vec<String> = engine.worklist().iter().map(|w| w.to_string()).collect();
    let mut full: Vec<String> = engine
        .worklist_full()
        .iter()
        .map(|w| w.to_string())
        .collect();
    indexed.sort();
    full.sort();
    assert_eq!(indexed, full, "index diverged from full recompute");
    engine
        .try_worklist()
        .expect("no instance may be unresolvable");
}

#[test]
fn instances_removed_mid_migration_are_vanished_not_structural() {
    let (engine, name, ids) = populated_engine();
    stage_evolution(&engine, &name);

    let to_remove: Vec<InstanceId> = ids.iter().copied().step_by(3).collect();
    let mut reports = Vec::new();
    crossbeam::scope(|scope| {
        let remover = {
            let engine = &engine;
            let to_remove = &to_remove;
            scope.spawn(move |_| {
                let mut removed = 0usize;
                for id in to_remove {
                    if engine.remove_instance(*id).is_ok() {
                        removed += 1;
                    }
                    std::thread::yield_now();
                }
                removed
            })
        };
        let migrator = scope.spawn(|_| {
            engine
                .migrate_all(&name, &MigrationOptions::default(), 4)
                .unwrap()
        });
        reports.push(migrator.join().unwrap());
        assert_eq!(remover.join().unwrap(), to_remove.len());
    })
    .unwrap();

    let report = &reports[0];
    // A fresh unbiased population has no real conflicts with the Fig. 1
    // delta: every outcome is either a migration or a vanished instance.
    assert_eq!(
        report.conflicts(ConflictKind::Structural),
        0,
        "removals must not masquerade as structural conflicts: {report}"
    );
    assert_eq!(report.conflicts(ConflictKind::State), 0, "{report}");
    assert_eq!(
        report.migrated() + report.vanished(),
        report.total(),
        "{report}"
    );
    assert_eq!(report.failed(), 0, "vanished instances are not failures");

    // Removed instances are gone everywhere; survivors all migrated.
    assert_eq!(engine.store.len(), POPULATION - to_remove.len());
    for id in &to_remove {
        assert!(engine.store.get(*id).is_none());
    }
    let latest = engine.repo.latest_version(&name).unwrap();
    for id in engine.store.ids() {
        assert_eq!(engine.store.get(id).unwrap().version, latest);
    }
    engine
        .try_worklist()
        .expect("worklist resolves after removals");
}

#[test]
fn remove_instance_clears_every_engine_trace() {
    let (engine, name, ids) = populated_engine();
    let victim = ids[0];
    assert!(!engine.worklist().is_empty());
    let removed = engine.remove_instance(victim).unwrap();
    assert_eq!(removed.id, victim);
    assert!(engine.store.get(victim).is_none());
    assert!(
        engine.worklist().iter().all(|w| w.instance != victim),
        "no work item may survive the instance"
    );
    assert!(!engine.store.instances_of(&name).contains(&victim));
    assert!(matches!(
        engine.remove_instance(victim),
        Err(adept_engine::EngineError::NotFound(_))
    ));
    assert!(engine.monitor.events().iter().any(|(_, e)| matches!(
        e,
        adept_engine::EngineEvent::InstanceRemoved { instance } if *instance == victim
    )));
}
