//! The epoch-stamped worklist cursor API (`worklist_delta`):
//!
//! * replay — applying deltas from epoch 0 (drop `invalidated`, replace
//!   `added` item sets) reconstructs exactly `worklist_full()` after
//!   arbitrary command/change-txn/migrate/remove interleavings,
//!   property-checked over generated simgen lifecycles;
//! * threaded stress — 4 writers mutating instances while 2 cursor
//!   readers stream deltas: the final reconstruction loses no item and
//!   resurrects none (removed instances stay gone).

use adept_engine::{ProcessEngine, WorkItem};
use adept_model::InstanceId;
use adept_simgen::{scenarios, RandomDriver};
use adept_tests::{adhoc, drive_with, evolve};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};

/// Canonical, order-independent rendering of a worklist for comparison.
fn canon(mut items: Vec<WorkItem>) -> Vec<String> {
    items.sort_by_key(|w| (w.instance.raw(), w.node.raw()));
    items
        .into_iter()
        .map(|w| {
            format!(
                "{}:{}:{}:{}:{}:{}",
                w.instance,
                w.node,
                w.activity,
                w.role.as_deref().unwrap_or("<anyone>"),
                w.type_name,
                w.version
            )
        })
        .collect()
}

/// A consumer's materialized view: applies deltas the documented way —
/// drop every invalidated id, then replace every added id's item set.
#[derive(Default)]
struct View {
    items: BTreeMap<InstanceId, Vec<WorkItem>>,
    epoch: u64,
}

impl View {
    fn poll(&mut self, engine: &ProcessEngine) {
        let d = engine.worklist_delta(self.epoch);
        for id in &d.invalidated {
            self.items.remove(id);
        }
        for (id, items) in d.added {
            self.items.insert(id, items);
        }
        self.epoch = d.epoch;
    }

    fn flat(&self) -> Vec<WorkItem> {
        self.items.values().flatten().cloned().collect()
    }
}

#[test]
fn delta_streams_changes_and_removals() {
    let engine = ProcessEngine::new();
    let name = engine.deploy(scenarios::order_process()).unwrap();
    let mut view = View::default();
    view.poll(&engine);
    assert!(view.items.is_empty());

    let a = engine.create_instance(&name).unwrap();
    let b = engine.create_instance(&name).unwrap();
    view.poll(&engine);
    assert_eq!(view.items.len(), 2);
    assert_eq!(canon(view.flat()), canon(engine.worklist_full()));

    // An unchanged world yields an empty delta — the point of the API.
    let d = engine.worklist_delta(view.epoch);
    assert!(d.added.is_empty() && d.invalidated.is_empty());

    // Progress on one instance surfaces only that instance.
    let mut driver = RandomDriver::new(1);
    drive_with(&engine, a, &mut driver, Some(1)).unwrap();
    let d = engine.worklist_delta(view.epoch);
    assert_eq!(d.added.len(), 1);
    assert_eq!(d.added[0].0, a);
    assert!(d.invalidated.is_empty());
    view.poll(&engine);
    assert_eq!(canon(view.flat()), canon(engine.worklist_full()));

    // Removal streams as an invalidation.
    engine.remove_instance(b).unwrap();
    let d = engine.worklist_delta(view.epoch);
    assert_eq!(d.invalidated, vec![b]);
    view.poll(&engine);
    assert_eq!(canon(view.flat()), canon(engine.worklist_full()));
}

/// An unresolvable index miss (an instance whose type the repository
/// does not know) is recomputed ONCE, not on every poll: the delta scan
/// installs the recomputed (empty) item set stamped with the pre-scan
/// epoch, and reports the resolution failure to the monitor exactly
/// once — a permanently dangling instance must not churn every delta
/// consumer and grow the event log without bound.
#[test]
fn unresolvable_miss_is_recomputed_once_not_every_poll() {
    let engine = ProcessEngine::new();
    let name = engine.deploy(scenarios::order_process()).unwrap();
    engine.create_instance(&name).unwrap();

    // Corrupt entry: an instance of a type the repository does not know.
    let dep = engine.repo.deployed(&name, 1).unwrap();
    let ghost_state = dep.execution().init().unwrap();
    let ghost = engine.store.create("ghost type", 1, ghost_state);

    let before = engine.monitor.len();
    let d1 = engine.worklist_delta(0);
    assert!(
        d1.added
            .iter()
            .any(|(id, items)| *id == ghost && items.is_empty()),
        "the unresolvable instance is reported once, offering nothing"
    );

    // Nothing changed: the ghost must not be re-missed and re-reported.
    let d2 = engine.worklist_delta(d1.epoch);
    assert!(
        d2.added.iter().all(|(id, _)| *id != ghost),
        "unresolvable miss re-reported on every poll"
    );
    let d3 = engine.worklist_delta(d2.epoch);
    assert!(d3.added.iter().all(|(id, _)| *id != ghost));

    let failures = engine.monitor.events()[before..]
        .iter()
        .filter(|(_, e)| {
            matches!(
                e,
                adept_engine::EngineEvent::WorklistResolutionFailed { instance, .. }
                    if *instance == ghost
            )
        })
        .count();
    assert_eq!(failures, 1, "the failure reaches the monitor exactly once");
}

/// 4 writers (create/drive/remove on disjoint instance pools) + 2 cursor
/// readers polling concurrently. After the writers join, one final poll
/// per reader must reconstruct exactly the full recompute: no lost
/// items, no resurrected (removed) instances.
#[test]
fn threaded_writers_and_cursor_readers_converge() {
    let engine = ProcessEngine::new();
    let name = engine.deploy(scenarios::order_process()).unwrap();
    let done = AtomicBool::new(false);

    let views: Vec<View> = std::thread::scope(|s| {
        let writers: Vec<_> = (0..4u64)
            .map(|w| {
                let engine = &engine;
                let name = &name;
                s.spawn(move || {
                    let mut rng = SmallRng::seed_from_u64(w ^ 0xbeef);
                    let mut mine: Vec<InstanceId> = Vec::new();
                    let mut removed = Vec::new();
                    for round in 0..30u64 {
                        let id = engine.create_instance(name).unwrap();
                        mine.push(id);
                        let steps = rng.gen_range(0..4);
                        let mut driver = RandomDriver::new(w << 32 | round);
                        let _ = drive_with(engine, id, &mut driver, Some(steps));
                        // Periodically remove an older instance: readers
                        // must never resurrect it.
                        if round % 5 == 4 {
                            let victim = mine.remove(rng.gen_range(0..mine.len()));
                            engine.remove_instance(victim).unwrap();
                            removed.push(victim);
                        }
                    }
                    removed
                })
            })
            .collect();
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let engine = &engine;
                let done = &done;
                s.spawn(move || {
                    let mut view = View::default();
                    while !done.load(Ordering::Acquire) {
                        view.poll(engine);
                    }
                    view.poll(engine); // final, post-quiescence poll
                    view
                })
            })
            .collect();
        let removed: Vec<InstanceId> = writers
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        done.store(true, Ordering::Release);
        let views: Vec<View> = readers.into_iter().map(|h| h.join().unwrap()).collect();
        for view in &views {
            for id in &removed {
                assert!(
                    !view.items.contains_key(id),
                    "removed {id} resurrected in a reader's view"
                );
            }
        }
        views
    });

    let reference = canon(engine.worklist_full());
    for (k, view) in views.iter().enumerate() {
        assert_eq!(
            canon(view.flat()),
            reference.clone(),
            "reader {k} diverged from the full recompute"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 20,
        ..ProptestConfig::default()
    })]

    /// Replaying `worklist_delta` from epoch 0 reconstructs exactly
    /// `worklist_full()` after arbitrary interleavings of commands,
    /// change-transaction commits, evolution + migration, and removals —
    /// polled at random points, so partial replays must compose too.
    #[test]
    fn delta_replay_reconstructs_full_worklist(seed in 0u64..10_000, steps in 8usize..24) {
        let schema = adept_simgen::generate_schema(&adept_simgen::GenParams::sized(12), seed);
        let engine = ProcessEngine::new();
        let name = engine.deploy(schema).unwrap();
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xde17a);
        let mut view = View::default();
        let mut ids: Vec<InstanceId> = Vec::new();

        for step in 0..steps {
            match rng.gen_range(0u8..8) {
                0 | 1 => ids.push(engine.create_instance(&name).unwrap()),
                2..=4 => {
                    if let Some(id) = ids.get(rng.gen_range(0..ids.len().max(1))).copied() {
                        let mut driver = RandomDriver::new(seed ^ (step as u64));
                        let _ = drive_with(&engine, id, &mut driver, Some(rng.gen_range(1..4)));
                    }
                }
                5 => {
                    if let Some(id) = ids.get(rng.gen_range(0..ids.len().max(1))).copied() {
                        let current = engine.store.schema_of(&engine.repo, id).unwrap();
                        for kind in adept_simgen::ALL_OP_KINDS {
                            if let Some(op) =
                                adept_simgen::changegen::propose(&current, kind, &mut rng, "p")
                            {
                                let _ = adhoc(&engine, id, &op);
                                break;
                            }
                        }
                    }
                }
                6 => {
                    let latest = engine.repo.latest_version(&name).unwrap();
                    let schema = engine.repo.deployed(&name, latest).unwrap().schema.clone();
                    let mut erng = SmallRng::seed_from_u64(seed ^ (step as u64) << 8);
                    if let Some(op) = adept_simgen::changegen::propose(
                        &schema,
                        adept_simgen::OpKind::SerialInsert,
                        &mut erng,
                        &format!("evo{step}"),
                    ) {
                        if evolve(&engine, &name, &[op]).is_ok() {
                            let _ = engine.migrate_all(&name, &Default::default(), 1);
                        }
                    }
                }
                _ => {
                    if !ids.is_empty() {
                        let victim = ids.remove(rng.gen_range(0..ids.len()));
                        let _ = engine.remove_instance(victim);
                    }
                }
            }
            if rng.gen_bool(0.4) {
                view.poll(&engine);
            }
        }
        view.poll(&engine);
        prop_assert_eq!(
            canon(view.flat()),
            canon(engine.worklist_full()),
            "delta replay diverged (seed {})", seed
        );
        // A fresh bootstrap (since 0) agrees too.
        let mut fresh = View::default();
        fresh.poll(&engine);
        prop_assert_eq!(
            canon(fresh.flat()),
            canon(engine.worklist_full()),
            "bootstrap delta diverged (seed {})", seed
        );
    }
}
