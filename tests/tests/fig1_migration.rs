//! Integration test reproducing paper Fig. 1 end to end: the type change
//! ΔT = addActivity(send questions, compose order, pack goods) +
//! insertSyncEdge(send questions, confirm order) against three instances:
//!
//! * I1 — early progress, unbiased: **compliant**, migrates with adapted
//!   marking and later executes "send questions";
//! * I2 — ad-hoc modified (sync confirm order -> compose order):
//!   **structural conflict** (deadlock-causing cycle);
//! * I3 — too far progressed: **state-related conflict**.

use adept_core::{ConflictKind, MigrationOptions, Verdict};
use adept_engine::ProcessEngine;
use adept_simgen::scenarios;
use adept_tests::{adhoc, drive, evolve};

fn setup_engine() -> (ProcessEngine, String) {
    let engine = ProcessEngine::new();
    let name = engine.deploy(scenarios::order_process()).unwrap();
    (engine, name)
}

#[test]
fn fig1_full_reproduction() {
    let (engine, name) = setup_engine();
    let v1 = engine.repo.deployed(&name, 1).unwrap();

    // I1: completed "get order" and "collect data".
    let i1 = engine.create_instance(&name).unwrap();
    drive(&engine, i1, Some(2)).unwrap();

    // I2: ad-hoc modified with the conflicting sync edge.
    let i2 = engine.create_instance(&name).unwrap();
    adhoc(&engine, i2, &scenarios::fig1_i2_bias_op(&v1.schema)).unwrap();

    // I3: runs to completion (pack goods already done).
    let i3 = engine.create_instance(&name).unwrap();
    drive(&engine, i3, None).unwrap();

    // ΔT as one composite type change (insert + sync edge), as in Fig. 1.
    let v2 = evolve(&engine, &name, &scenarios::fig1_delta_ops(&v1.schema)).unwrap();
    assert_eq!(v2, 2);
    let s2 = engine.repo.deployed(&name, 2).unwrap();
    let sq = s2.schema.node_by_name("send questions").unwrap().id;

    let report = engine
        .migrate_all(&name, &MigrationOptions::default(), 1)
        .unwrap();

    assert_eq!(report.total(), 3);
    assert_eq!(report.migrated(), 1, "{report}");
    assert_eq!(report.conflicts(ConflictKind::Structural), 1, "{report}");
    assert_eq!(report.conflicts(ConflictKind::State), 1, "{report}");

    // Per-instance verdicts match the figure.
    for o in &report.outcomes {
        if o.instance == i1 {
            assert!(o.verdict.is_compliant(), "I1 must migrate");
            assert!(!o.biased);
        }
        if o.instance == i2 {
            assert!(o.biased, "I2 is ad-hoc modified");
            match &o.verdict {
                Verdict::NotCompliant(c) => assert_eq!(c.kind, ConflictKind::Structural),
                v => panic!("I2 expected structural conflict, got {v}"),
            }
        }
        if o.instance == i3 {
            match &o.verdict {
                Verdict::NotCompliant(c) => assert_eq!(c.kind, ConflictKind::State),
                v => panic!("I3 expected state conflict, got {v}"),
            }
        }
    }

    // I1 now runs on V2 and executes the inserted activity; the sync edge
    // forces "send questions" before "confirm order".
    drive(&engine, i1, None).unwrap();
    assert!(engine.is_finished(i1).unwrap());
    let inst1 = engine.store.get(i1).unwrap();
    assert_eq!(inst1.version, 2);
    let started = inst1.state.history.started_activities();
    let pos_sq = started.iter().position(|n| *n == sq).expect("sq executed");
    let confirm = s2.schema.node_by_name("confirm order").unwrap().id;
    let pos_confirm = started
        .iter()
        .position(|n| *n == confirm)
        .expect("confirm executed");
    assert!(
        pos_sq < pos_confirm,
        "sync edge must order send questions before confirm order"
    );

    // I2 and I3 remain on V1 and still finish on their old schema.
    assert_eq!(engine.store.get(i2).unwrap().version, 1);
    assert_eq!(engine.store.get(i3).unwrap().version, 1);
    drive(&engine, i2, None).unwrap();
    assert!(engine.is_finished(i2).unwrap());
}

#[test]
fn fig1_trace_criterion_agrees() {
    // The same scenario decided by the trace-replay criterion instead of
    // the fast conditions.
    let (engine, name) = setup_engine();
    let v1 = engine.repo.deployed(&name, 1).unwrap();

    let i1 = engine.create_instance(&name).unwrap();
    drive(&engine, i1, Some(2)).unwrap();
    let i3 = engine.create_instance(&name).unwrap();
    drive(&engine, i3, None).unwrap();

    evolve(&engine, &name, &[scenarios::fig1_insert_op(&v1.schema)]).unwrap();

    let options = MigrationOptions {
        use_trace_criterion: true,
        ..Default::default()
    };
    let report = engine.migrate_all(&name, &options, 1).unwrap();
    assert_eq!(report.migrated(), 1, "{report}");
    assert_eq!(report.conflicts(ConflictKind::State), 1, "{report}");
}

#[test]
fn migration_is_idempotent() {
    let (engine, name) = setup_engine();
    let v1 = engine.repo.deployed(&name, 1).unwrap();
    let i1 = engine.create_instance(&name).unwrap();
    evolve(&engine, &name, &[scenarios::fig1_insert_op(&v1.schema)]).unwrap();
    let r1 = engine
        .migrate_all(&name, &MigrationOptions::default(), 1)
        .unwrap();
    assert_eq!(r1.migrated(), 1);
    // Migrating again is a no-op: everything already on the latest version.
    let r2 = engine
        .migrate_all(&name, &MigrationOptions::default(), 1)
        .unwrap();
    assert_eq!(
        r2.migrated(),
        1,
        "already-migrated instances stay compliant"
    );
    assert_eq!(engine.store.get(i1).unwrap().version, 2);
}
