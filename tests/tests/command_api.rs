//! The unified command/event execution API, end to end:
//!
//! * **one code path** — the deprecated per-verb wrappers, `submit` and
//!   `submit_batch` produce identical state transitions;
//! * **complete event stream** — decisions (XOR and loop) now emit
//!   `DecisionMade` monitor events, and a driven run's event stream is
//!   gap-free against the instance history;
//! * **batching** — a batch resolves each instance's context at most once
//!   and a failed command neither aborts its group nor leaves partial
//!   state behind.

#![allow(deprecated)] // the wrapper-equivalence tests exercise the verbs deliberately

use adept_engine::{EngineCommand, EngineError, EngineEvent, ProcessEngine};
use adept_model::{LoopCond, SchemaBuilder, Value, ValueType};
use adept_simgen::scenarios;
use adept_state::{Decision, Event};
use adept_tests::drive;

/// A schema with an externally decided XOR and an externally decided loop
/// — the decision shapes that previously bypassed the monitor.
fn decision_schema() -> adept_model::ProcessSchema {
    let mut b = SchemaBuilder::new("decisions");
    b.loop_start();
    b.xor_split();
    b.case();
    b.activity("fast lane");
    b.case();
    b.activity("slow lane");
    b.xor_join();
    b.loop_end(LoopCond::External);
    b.activity("wrap up");
    b.build().unwrap()
}

#[test]
fn explicit_decisions_emit_monitor_events() {
    let engine = ProcessEngine::new();
    let name = engine.deploy(decision_schema()).unwrap();
    let id = engine.create_instance(&name).unwrap();

    let decisions = engine.pending_decisions(id).unwrap();
    let Decision::Xor { split, targets } = &decisions[0] else {
        panic!("expected XOR decision, got {decisions:?}");
    };
    let outcome = engine
        .submit(EngineCommand::DecideXor {
            instance: id,
            split: *split,
            branch_target: targets[1],
        })
        .unwrap();
    assert!(
        outcome
            .events
            .iter()
            .any(|e| matches!(e, EngineEvent::DecisionMade { node, .. } if node == split)),
        "XOR decision must emit DecisionMade: {:?}",
        outcome.events
    );
    assert_eq!(outcome.newly_enabled.len(), 1, "slow lane became enabled");

    // Work through the slow lane, then answer the loop decision.
    let slow = outcome.newly_enabled[0];
    engine
        .submit_batch(vec![
            EngineCommand::Start {
                instance: id,
                node: slow,
            },
            EngineCommand::Complete {
                instance: id,
                node: slow,
                writes: vec![],
            },
        ])
        .into_iter()
        .for_each(|r| {
            r.unwrap();
        });
    let decisions = engine.pending_decisions(id).unwrap();
    let Decision::Loop { loop_end, .. } = &decisions[0] else {
        panic!("expected loop decision, got {decisions:?}");
    };
    let outcome = engine
        .submit(EngineCommand::DecideLoop {
            instance: id,
            loop_end: *loop_end,
            iterate: false,
        })
        .unwrap();
    assert!(outcome
        .events
        .iter()
        .any(|e| matches!(e, EngineEvent::DecisionMade { choice, .. } if choice == "exit")));

    drive(&engine, id, None).unwrap();
    assert!(engine.is_finished(id).unwrap());

    // Both decisions are in the engine-level log.
    let decisions_logged = engine
        .monitor
        .events()
        .iter()
        .filter(|(_, e)| matches!(e, EngineEvent::DecisionMade { .. }))
        .count();
    assert!(decisions_logged >= 2, "XOR + loop decisions logged");
}

/// Regression: a driven run with decisions produces a gap-free event
/// stream — every started/completed activity and every external decision
/// recorded in the instance history has a monitor counterpart.
#[test]
fn driven_run_event_stream_is_gap_free() {
    let engine = ProcessEngine::new();
    let name = engine.deploy(decision_schema()).unwrap();
    let id = engine.create_instance(&name).unwrap();
    drive(&engine, id, None).unwrap();
    assert!(engine.is_finished(id).unwrap());

    let events = engine.monitor.events();
    let history = engine.store.get(id).unwrap().state.history;
    for ev in &history.events {
        let covered = match ev {
            Event::Started { node, .. } => events.iter().any(|(_, e)| {
                matches!(e, EngineEvent::ActivityStarted { instance, node: n }
                         if *instance == id && n == node)
            }),
            Event::Completed { node, .. } => events.iter().any(|(_, e)| {
                matches!(e, EngineEvent::ActivityCompleted { instance, node: n }
                         if *instance == id && n == node)
            }),
            // The externally decided loop end must surface as DecisionMade
            // (guard-driven decisions are schema semantics, not actor
            // steps; this schema's XOR is external too).
            Event::XorChosen { split, .. } => events.iter().any(|(_, e)| {
                matches!(e, EngineEvent::DecisionMade { instance, node, .. }
                         if *instance == id && node == split)
            }),
            Event::LoopDecided { loop_end, .. } => events.iter().any(|(_, e)| {
                matches!(e, EngineEvent::DecisionMade { instance, node, .. }
                         if *instance == id && node == loop_end)
            }),
            _ => true,
        };
        assert!(covered, "history event {ev:?} missing from monitor stream");
    }
    assert!(events
        .iter()
        .any(|(_, e)| matches!(e, EngineEvent::InstanceFinished { instance } if *instance == id)));
}

/// The deprecated verbs and the command path drive two engines through the
/// same scenario and must end in the identical world.
#[test]
fn wrapper_verbs_are_equivalent_to_commands() {
    let (by_verbs, by_commands) = (ProcessEngine::new(), ProcessEngine::new());
    let n1 = by_verbs.deploy(scenarios::order_process()).unwrap();
    let n2 = by_commands.deploy(scenarios::order_process()).unwrap();
    let i1 = by_verbs.create_instance(&n1).unwrap();
    let i2 = by_commands.create_instance(&n2).unwrap();

    // Step both one activity at a time through their worklists.
    loop {
        let wl1 = by_verbs.worklist();
        let wl2 = by_commands.worklist();
        assert_eq!(wl1.len(), wl2.len(), "worklists stay in lockstep");
        let Some(w1) = wl1.first() else { break };
        let w2 = &wl2[0];
        assert_eq!(w1.activity, w2.activity);
        assert_eq!(w1.node, w2.node);

        let schema = by_verbs.store.schema_of(&by_verbs.repo, i1).unwrap();
        let writes: Vec<_> = schema
            .writes_of(w1.node)
            .map(|de| (de.data, Value::Int(7)))
            .collect();

        by_verbs.start_activity(i1, w1.node).unwrap();
        by_verbs
            .complete_activity(i1, w1.node, writes.clone())
            .unwrap();

        by_commands
            .submit_batch(vec![
                EngineCommand::Start {
                    instance: i2,
                    node: w2.node,
                },
                EngineCommand::Complete {
                    instance: i2,
                    node: w2.node,
                    writes,
                },
            ])
            .into_iter()
            .for_each(|r| {
                r.unwrap();
            });
    }
    // Drive the rest (the order process has no external decisions).
    let verbs_n = by_verbs
        .run_instance(i1, &mut adept_state::DefaultDriver, None)
        .unwrap();
    let cmd_n = drive(&by_commands, i2, None).unwrap().completed;
    assert_eq!(verbs_n, cmd_n, "wrapper returns the driven count");

    let a = by_verbs.store.get(i1).unwrap();
    let b = by_commands.store.get(i2).unwrap();
    assert_eq!(a.state, b.state, "identical final state");
    // Both paths produced the identical monitor event stream.
    let ev = |e: &ProcessEngine| -> Vec<String> {
        e.monitor
            .events()
            .iter()
            .map(|(_, x)| x.to_string())
            .collect()
    };
    assert_eq!(ev(&by_verbs), ev(&by_commands));
}

#[test]
fn batch_matches_sequential_submission() {
    let seq = ProcessEngine::new();
    let bat = ProcessEngine::new();
    let n1 = seq.deploy(scenarios::container_logistics()).unwrap();
    let n2 = bat.deploy(scenarios::container_logistics()).unwrap();
    let cmds = |name: &str| {
        vec![
            EngineCommand::CreateInstance {
                type_name: name.to_string(),
            },
            EngineCommand::CreateInstance {
                type_name: name.to_string(),
            },
        ]
    };
    let c1: Vec<_> = cmds(&n1)
        .into_iter()
        .map(|c| seq.submit(c).unwrap())
        .collect();
    let c2: Vec<_> = bat
        .submit_batch(cmds(&n2))
        .into_iter()
        .map(|r| r.unwrap())
        .collect();
    assert_eq!(c1.len(), c2.len());

    // Interleave work on both instances in one batch vs one by one.
    let per_instance = |id| EngineCommand::Drive {
        instance: id,
        max: Some(3),
    };
    for o in &c1 {
        seq.submit(per_instance(o.instance)).unwrap();
    }
    let outcomes = bat.submit_batch(c2.iter().map(|o| per_instance(o.instance)).collect());
    for (o_seq, o_bat) in c1.iter().zip(outcomes) {
        let o_bat = o_bat.unwrap();
        assert_eq!(
            seq.store.get(o_seq.instance).unwrap().state,
            bat.store.get(o_bat.instance).unwrap().state
        );
    }
    assert_eq!(seq.worklist().len(), bat.worklist().len());
}

/// The acceptance criterion: a batch resolves each instance's context at
/// most once — observable through the store's schema-access statistics.
#[test]
fn batch_resolves_instance_context_at_most_once() {
    let engine = ProcessEngine::new();
    let mut b = SchemaBuilder::new("chain");
    for k in 0..16 {
        b.activity(&format!("step {k}"));
    }
    let name = engine.deploy(b.build().unwrap()).unwrap();
    let id = engine.create_instance(&name).unwrap();

    let schema = engine.store.schema_of(&engine.repo, id).unwrap();
    let mut batch = Vec::new();
    let mut node = schema.node_by_name("step 0").unwrap().id;
    for k in 0..16 {
        if k > 0 {
            node = schema.node_by_name(&format!("step {k}")).unwrap().id;
        }
        batch.push(EngineCommand::Start { instance: id, node });
        batch.push(EngineCommand::Complete {
            instance: id,
            node,
            writes: vec![],
        });
    }

    let accesses = |e: &ProcessEngine| {
        let s = e.store.stats();
        s.shared_hits + s.cache_hits + s.materializations
    };
    let before = accesses(&engine);
    for r in engine.submit_batch(batch) {
        r.unwrap();
    }
    let delta = accesses(&engine) - before;
    assert!(
        delta <= 1,
        "32 batched commands must resolve the context at most once, got {delta} accesses"
    );
    assert!(engine.is_finished(id).unwrap());
}

#[test]
fn failed_command_is_isolated_and_side_effect_free() {
    let engine = ProcessEngine::new();
    let mut b = SchemaBuilder::new("writes");
    let d = b.data("x", ValueType::Int);
    let a = b.activity("a");
    b.write(a, d);
    let c = b.activity("c");
    let name = engine.deploy(b.build().unwrap()).unwrap();
    let id = engine.create_instance(&name).unwrap();

    let results = engine.submit_batch(vec![
        // Fails: c is not activated yet.
        EngineCommand::Start {
            instance: id,
            node: c,
        },
        // Succeeds.
        EngineCommand::Start {
            instance: id,
            node: a,
        },
        // Fails mid-writes: type mismatch must not leave partial data.
        EngineCommand::Complete {
            instance: id,
            node: a,
            writes: vec![(d, Value::Str("wrong type".into()))],
        },
        // Succeeds: the failed completion left `a` running and untouched.
        EngineCommand::Complete {
            instance: id,
            node: a,
            writes: vec![(d, Value::Int(1))],
        },
    ]);
    assert!(matches!(results[0], Err(EngineError::Runtime(_))));
    assert!(results[1].is_ok());
    assert!(matches!(results[2], Err(EngineError::Runtime(_))));
    assert!(results[3].is_ok(), "{:?}", results[3]);
    let st = &engine.store.get(id).unwrap().state;
    assert_eq!(st.data.log().len(), 1, "exactly one (valid) write survived");
    drive(&engine, id, None).unwrap();
    assert!(engine.is_finished(id).unwrap());
}

#[test]
fn outcomes_report_enabled_delta_and_finish() {
    let engine = ProcessEngine::new();
    let name = engine.deploy(scenarios::order_process()).unwrap();
    let created = engine
        .submit(EngineCommand::CreateInstance {
            type_name: name.clone(),
        })
        .unwrap();
    assert_eq!(created.newly_enabled.len(), 1, "get order is enabled");
    assert!(!created.finished);

    let outcome = drive(&engine, created.instance, None).unwrap();
    assert!(outcome.finished);
    assert!(outcome.completed >= 6, "all activities driven");
    assert!(outcome.enabled.is_empty());
    // The worklist agrees: nothing left to offer.
    assert!(engine.worklist().is_empty());
}
