//! Property C5: the *efficient* incremental state adaptation produces the
//! same marking as re-deriving the state by replaying the reduced history
//! on the changed schema.

use adept_core::{adapt_instance_state, check_fast};
use adept_simgen::{generate_population, random_change, GenParams};
use adept_state::Execution;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        ..ProptestConfig::default()
    })]

    #[test]
    fn adaptation_matches_replay(
        schema_seed in 0u64..5000,
        pop_seed in 0u64..5000,
        change_seed in 0u64..5000,
    ) {
        let schema = adept_simgen::generate_schema(&GenParams::sized(14), schema_seed);
        let ex = Execution::new(&schema).unwrap();
        let Some((evolved, delta)) = random_change(&schema, change_seed, "adapt") else {
            return Ok(());
        };
        let ex_new = Execution::new(&evolved).unwrap();

        for st in generate_population(&ex, 4, pop_seed) {
            // Only compliant instances are adapted.
            if !check_fast(&schema, &ex.blocks, &st, &delta).is_compliant() {
                continue;
            }
            let mut adapted = st.clone();
            adapt_instance_state(&schema, &ex.blocks, &ex_new, &delta, &mut adapted).unwrap();

            let reduced = st.history.reduced(&schema, &ex.blocks);
            let replayed = ex_new.replay(&reduced).unwrap();
            prop_assert!(
                adapted.marking.same_states(&replayed.marking),
                "adaptation != replay (schema {}, pop {}, change {}):\n  delta:    {}\n  adapted:  {}\n  replayed: {}\n  history:  {}",
                schema_seed, pop_seed, change_seed,
                &delta, adapted.marking, replayed.marking, &st.history
            );
        }
    }

    /// Adapted instances remain executable: they can always run to
    /// completion on the new schema (no stuck markings).
    #[test]
    fn adapted_instances_can_finish(
        schema_seed in 0u64..5000,
        pop_seed in 0u64..5000,
        change_seed in 0u64..5000,
    ) {
        let schema = adept_simgen::generate_schema(&GenParams::sized(12), schema_seed);
        let ex = Execution::new(&schema).unwrap();
        let Some((evolved, delta)) = random_change(&schema, change_seed, "finish") else {
            return Ok(());
        };
        let ex_new = Execution::new(&evolved).unwrap();
        for (k, st) in generate_population(&ex, 3, pop_seed).into_iter().enumerate() {
            if !check_fast(&schema, &ex.blocks, &st, &delta).is_compliant() {
                continue;
            }
            let mut adapted = st.clone();
            adapt_instance_state(&schema, &ex.blocks, &ex_new, &delta, &mut adapted).unwrap();
            let mut driver = adept_simgen::RandomDriver::new(pop_seed ^ (k as u64) << 7);
            ex_new.run(&mut adapted, &mut driver, Some(500)).unwrap();
            prop_assert!(
                ex_new.is_finished(&adapted),
                "adapted instance stuck (schema {}, change {}): {}",
                schema_seed, change_seed, adapted.marking
            );
        }
    }
}
