//! Offline stand-in for `rand`: a deterministic xoshiro256** generator
//! behind the `SmallRng` name, with the `Rng`/`SeedableRng` surface this
//! workspace uses (`gen_range`, `gen_bool`, `gen`, `seed_from_u64`).

use std::ops::{Range, RangeInclusive};

/// Seedable construction of RNGs.
pub trait SeedableRng: Sized {
    /// Builds an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling a `T` from a range — the constraint behind [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// The raw generator interface.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// The user-facing generator methods, in rand's nomenclature.
pub trait Rng: RngCore + Sized {
    /// A uniformly distributed value from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        uniform_f64(self.next_u64()) < p
    }

    /// A random value of a supported type (`f64`, `u32`, `u64`, `bool`).
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }
}

impl<R: RngCore + Sized> Rng for R {}

/// Types drawable by [`Rng::gen`] from the "standard" distribution.
pub trait Standard: Sized {
    /// Draws one value.
    fn draw(rng: &mut dyn RngCore) -> Self;
}

impl Standard for f64 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        uniform_f64(rng.next_u64())
    }
}

impl Standard for u64 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn draw(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Maps 64 random bits onto `[0, 1)`.
fn uniform_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! int_range {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                (self.start as $wide).wrapping_add((rng.next_u64() % span) as $wide) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as $wide).wrapping_add((rng.next_u64() % (span + 1)) as $wide) as $t
            }
        }
    )*};
}
int_range!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range");
                self.start + (uniform_f64(rng.next_u64()) as $t) * (self.end - self.start)
            }
        }
    )*};
}
float_range!(f32, f64);

/// RNG namespace, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, as rand does.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            let x = a.gen_range(0usize..17);
            assert!(x < 17);
            assert_eq!(x, b.gen_range(0usize..17));
        }
        let mut c = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            let f = c.gen_range(0.0f64..100.0);
            assert!((0.0..100.0).contains(&f));
            let i = c.gen_range(1i64..=3);
            assert!((1..=3).contains(&i));
            let r: f64 = c.gen();
            assert!((0.0..1.0).contains(&r));
            let _ = c.gen_bool(0.5);
        }
    }
}
