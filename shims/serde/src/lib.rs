//! Offline stand-in for `serde` providing the exact surface this workspace
//! uses: `Serialize`/`Deserialize` traits over a JSON-like [`Value`] data
//! model, plus the derive macros re-exported from `serde_derive`.
//!
//! The derive macros generate `Serialize::serialize` /
//! `Deserialize::deserialize` impls against [`Value`]; `serde_json` (the
//! sibling shim) renders and parses that model as standard JSON text.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::Hash;

/// The serialization data model: a superset of JSON values. Maps with
/// non-string keys are modelled as [`Value::Pairs`] and rendered as arrays
/// of `[key, value]` pairs.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer outside the `i64` range.
    UInt(u64),
    /// Floating point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object with string keys (structs, string-keyed maps).
    Map(Vec<(String, Value)>),
    /// Map with arbitrary keys, kept in insertion order.
    Pairs(Vec<(Value, Value)>),
}

/// Deserialization error: what was expected and what was found.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl Error {
    /// Constructs an error describing a type mismatch.
    pub fn expected(what: &str, got: &Value) -> Self {
        Error(format!("expected {what}, got {got:?}"))
    }
}

/// Serialization into the [`Value`] model.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn serialize(&self) -> Value;
}

/// Deserialization from the [`Value`] model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`].
    fn deserialize(v: &Value) -> Result<Self, Error>;
}

// ----------------------------------------------------------------------
// Helpers used by derive-generated code
// ----------------------------------------------------------------------

/// Looks up a struct field in an object value.
pub fn field<'a>(m: &'a [(String, Value)], k: &'static str) -> Result<&'a Value, Error> {
    m.iter()
        .find(|(n, _)| n == k)
        .map(|(_, v)| v)
        .ok_or_else(|| Error(format!("missing field {k:?}")))
}

/// Interprets a value as an object (struct / enum payload).
pub fn as_map<'a>(v: &'a Value, what: &'static str) -> Result<&'a [(String, Value)], Error> {
    match v {
        Value::Map(m) => Ok(m),
        other => Err(Error::expected(what, other)),
    }
}

/// Interprets a value as an array of a statically known length.
pub fn as_seq<'a>(v: &'a Value, n: usize, what: &'static str) -> Result<&'a [Value], Error> {
    match v {
        Value::Seq(s) if s.len() == n => Ok(s),
        other => Err(Error::expected(what, other)),
    }
}

// ----------------------------------------------------------------------
// Primitive impls
// ----------------------------------------------------------------------

macro_rules! int_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| Error(format!("{i} out of range for {}", stringify!($t)))),
                    Value::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| Error(format!("{u} out of range for {}", stringify!($t)))),
                    other => Err(Error::expected(stringify!($t), other)),
                }
            }
        }
    )*};
}
int_impl!(i8, i16, i32, i64, isize, u8, u16, u32, usize);

impl Serialize for u64 {
    fn serialize(&self) -> Value {
        if let Ok(i) = i64::try_from(*self) {
            Value::Int(i)
        } else {
            Value::UInt(*self)
        }
    }
}

impl Deserialize for u64 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Int(i) => u64::try_from(*i).map_err(|_| Error(format!("{i} negative"))),
            Value::UInt(u) => Ok(*u),
            other => Err(Error::expected("u64", other)),
        }
    }
}

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Float(x) => Ok(*x),
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            other => Err(Error::expected("f64", other)),
        }
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        f64::deserialize(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::expected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::expected("char", other)),
        }
    }
}

impl Serialize for () {
    fn serialize(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(()),
            other => Err(Error::expected("null", other)),
        }
    }
}

// ----------------------------------------------------------------------
// Composite impls
// ----------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.serialize(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        T::deserialize(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(s) => s.iter().map(T::deserialize).collect(),
            other => Err(Error::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize(&self) -> Value {
        Value::Seq(vec![self.0.serialize(), self.1.serialize()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let s = as_seq(v, 2, "pair")?;
        Ok((A::deserialize(&s[0])?, B::deserialize(&s[1])?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize(&self) -> Value {
        Value::Seq(vec![
            self.0.serialize(),
            self.1.serialize(),
            self.2.serialize(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let s = as_seq(v, 3, "triple")?;
        Ok((
            A::deserialize(&s[0])?,
            B::deserialize(&s[1])?,
            C::deserialize(&s[2])?,
        ))
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        Value::Pairs(
            self.iter()
                .map(|(k, v)| (k.serialize(), v.serialize()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        pairs_of(v)?
            .map(|(k, v)| Ok((K::deserialize(k)?, V::deserialize(v)?)))
            .collect()
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn serialize(&self) -> Value {
        Value::Pairs(
            self.iter()
                .map(|(k, v)| (k.serialize(), v.serialize()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        pairs_of(v)?
            .map(|(k, v)| Ok((K::deserialize(k)?, V::deserialize(v)?)))
            .collect()
    }
}

/// Iterates the `(key, value)` pairs of a serialized map, accepting both
/// the native [`Value::Pairs`] form and its JSON parse (array of 2-arrays).
fn pairs_of(v: &Value) -> Result<Box<dyn Iterator<Item = (&Value, &Value)> + '_>, Error> {
    match v {
        Value::Pairs(p) => Ok(Box::new(p.iter().map(|(k, v)| (k, v)))),
        Value::Seq(s) => {
            for e in s {
                if !matches!(e, Value::Seq(inner) if inner.len() == 2) {
                    return Err(Error::expected("[key, value] pair", e));
                }
            }
            Ok(Box::new(s.iter().map(|e| match e {
                Value::Seq(inner) => (&inner[0], &inner[1]),
                _ => unreachable!(),
            })))
        }
        other => Err(Error::expected("map", other)),
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(s) => s.iter().map(T::deserialize).collect(),
            other => Err(Error::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for HashSet<T> {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(s) => s.iter().map(T::deserialize).collect(),
            other => Err(Error::expected("array", other)),
        }
    }
}
