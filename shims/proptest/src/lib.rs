//! Offline stand-in for `proptest`: the `proptest!` / `prop_assert!` /
//! `prop_assert_eq!` macro surface over range strategies, which is the
//! subset this workspace's property tests use.
//!
//! Each test draws `config.cases` deterministic samples (seeded from the
//! test name, so runs are reproducible) from its range strategies and
//! fails with the offending inputs on the first assertion failure.
//! Shrinking is out of scope.

use std::fmt;
use std::ops::Range;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases per test.
    pub cases: u32,
    /// Accepted-and-ignored knobs kept for signature compatibility.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// A failed property case.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Result type of a property body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A source of sampled values — the shim's notion of a strategy.
pub trait Strategy {
    /// The sampled type.
    type Value: fmt::Debug + Clone;
    /// Draws one value with the given RNG state.
    fn sample(&self, rng: &mut SampleRng) -> Self::Value;
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SampleRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SampleRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add((rng.next_u64() % span) as i64) as $t
            }
        }
    )*};
}
signed_range_strategy!(i8, i16, i32, i64, isize);

/// Deterministic sample RNG (splitmix64).
pub struct SampleRng(u64);

impl SampleRng {
    /// Seeds the RNG from a test identity and case index.
    pub fn new(test_name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
        Self(h ^ ((case as u64) << 32 | 0x9e37))
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Runs one property with the shim harness. Used by the `proptest!`
/// expansion; not public API of real proptest.
pub fn run_cases<F>(test_name: &str, config: &ProptestConfig, mut body: F)
where
    F: FnMut(&mut SampleRng) -> Result<String, (String, TestCaseError)>,
{
    for case in 0..config.cases {
        let mut rng = SampleRng::new(test_name, case);
        if let Err((inputs, e)) = body(&mut rng) {
            panic!(
                "proptest case {case}/{} failed for {test_name}\n  inputs: {inputs}\n  {e}",
                config.cases
            );
        }
    }
}

/// The macro + type prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestCaseError, TestCaseResult,
    };
}

/// Declares property tests over range strategies.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::run_cases(stringify!($name), &config, |rng| {
                    $(let $arg = $crate::Strategy::sample(&($strategy), rng);)+
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}  ",)+),
                        $($arg.clone()),+
                    );
                    let mut run = || -> $crate::TestCaseResult {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    };
                    match run() {
                        Ok(()) => Ok(inputs),
                        Err(e) => Err((inputs, e)),
                    }
                });
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name( $($arg in $strategy),+ ) $body
            )*
        }
    };
}

/// Fails the current property case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// Fails the current property case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError(
                format!($($fmt)*) + &format!("\n  left: {l:?}\n right: {r:?}"),
            ));
        }
    }};
}

/// Fails the current property case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}
