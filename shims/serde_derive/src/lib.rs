//! Offline stand-in for `serde_derive`: `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` for non-generic structs and enums, written
//! directly against `proc_macro` (no syn/quote in the container).
//!
//! Generated code targets the sibling `serde` shim's value model:
//!
//! * named-field struct  → `Value::Map([(field, value), ...])`
//! * newtype struct      → the inner value
//! * tuple struct        → `Value::Seq([...])`
//! * unit struct         → `Value::Null`
//! * unit enum variant   → `Value::Str(variant)`
//! * tuple enum variant  → `Value::Map([(variant, Seq([...]))])`
//! * struct enum variant → `Value::Map([(variant, Map([...]))])`

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, true)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, false)
}

// ----------------------------------------------------------------------
// A minimal item model
// ----------------------------------------------------------------------

enum Fields {
    Unit,
    /// Tuple fields; the count.
    Tuple(usize),
    /// Named fields in declaration order.
    Named(Vec<String>),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

fn expand(input: TokenStream, serialize: bool) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => {
            return format!("compile_error!({msg:?});").parse().unwrap();
        }
    };
    let code = if serialize {
        gen_serialize(&item)
    } else {
        gen_deserialize(&item)
    };
    code.parse().unwrap()
}

// ----------------------------------------------------------------------
// Parsing
// ----------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut toks = input.into_iter().peekable();
    // Skip outer attributes and the visibility.
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                toks.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                toks.next();
                if let Some(TokenTree::Group(g)) = toks.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        toks.next(); // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }
    let kind = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, got {other:?}")),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };
    if let Some(TokenTree::Punct(p)) = toks.peek() {
        if p.as_char() == '<' {
            return Err(format!("derive shim does not support generics on {name}"));
        }
    }
    match kind.as_str() {
        "struct" => {
            let fields = match toks.next() {
                None => Fields::Unit,
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream())?)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                other => return Err(format!("unexpected token after struct name: {other:?}")),
            };
            Ok(Item::Struct { name, fields })
        }
        "enum" => {
            let body = match toks.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => return Err(format!("expected enum body, got {other:?}")),
            };
            Ok(Item::Enum {
                name,
                variants: parse_variants(body)?,
            })
        }
        other => Err(format!("cannot derive for {other}")),
    }
}

/// Parses `{ attrs? vis? name: Type, ... }` into the field names. Type
/// tokens are skipped with angle-bracket depth tracking (generic argument
/// commas are not field separators).
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut toks = body.into_iter().peekable();
    loop {
        // Skip attributes (doc comments) and visibility.
        loop {
            match toks.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    toks.next();
                    toks.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    toks.next();
                    if let Some(TokenTree::Group(g)) = toks.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            toks.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(tree) = toks.next() else { break };
        let TokenTree::Ident(id) = tree else {
            return Err(format!("expected field name, got {tree:?}"));
        };
        fields.push(id.to_string());
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected ':' after field, got {other:?}")),
        }
        // Skip the type up to the next top-level comma.
        let mut angle = 0i32;
        loop {
            match toks.peek() {
                None => break,
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                    angle += 1;
                    toks.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                    angle -= 1;
                    toks.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle == 0 => {
                    toks.next();
                    break;
                }
                _ => {
                    toks.next();
                }
            }
        }
    }
    Ok(fields)
}

/// Counts the fields of a tuple struct/variant body (top-level commas at
/// angle depth 0, tolerant of a trailing comma).
fn count_tuple_fields(body: TokenStream) -> usize {
    let mut count = 0usize;
    let mut saw_tokens = false;
    let mut angle = 0i32;
    let mut pending = false;
    for t in body {
        saw_tokens = true;
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                count += 1;
                pending = false;
                continue;
            }
            _ => {}
        }
        pending = true;
    }
    if pending {
        count += 1;
    }
    if saw_tokens {
        count
    } else {
        0
    }
}

fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    let mut toks = body.into_iter().peekable();
    loop {
        // Skip attributes.
        while let Some(TokenTree::Punct(p)) = toks.peek() {
            if p.as_char() == '#' {
                toks.next();
                toks.next();
            } else {
                break;
            }
        }
        let Some(tree) = toks.next() else { break };
        let TokenTree::Ident(id) = tree else {
            return Err(format!("expected variant name, got {tree:?}"));
        };
        let name = id.to_string();
        let fields = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = Fields::Named(parse_named_fields(g.stream())?);
                toks.next();
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = Fields::Tuple(count_tuple_fields(g.stream()));
                toks.next();
                f
            }
            _ => Fields::Unit,
        };
        match toks.next() {
            None => {
                variants.push(Variant { name, fields });
                break;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {
                variants.push(Variant { name, fields });
            }
            other => return Err(format!("unexpected token after variant {name}: {other:?}")),
        }
    }
    Ok(variants)
}

// ----------------------------------------------------------------------
// Code generation
// ----------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "::serde::Value::Null".to_string(),
                Fields::Tuple(1) => "::serde::Serialize::serialize(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Seq(vec![{}])", items.join(", "))
                }
                Fields::Named(fs) => {
                    let items: Vec<String> = fs
                        .iter()
                        .map(|f| {
                            format!("({f:?}.to_string(), ::serde::Serialize::serialize(&self.{f}))")
                        })
                        .collect();
                    format!("::serde::Value::Map(vec![{}])", items.join(", "))
                }
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n                    fn serialize(&self) -> ::serde::Value {{ {body} }}\n                }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        arms.push_str(&format!(
                            "{name}::{vn} => ::serde::Value::Str({vn:?}.to_string()),\n"
                        ));
                    }
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::serialize({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Value::Map(vec![({vn:?}.to_string(), ::serde::Value::Seq(vec![{}]))]),\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                    Fields::Named(fs) => {
                        let binds = fs.join(", ");
                        let items: Vec<String> = fs
                            .iter()
                            .map(|f| {
                                format!("({f:?}.to_string(), ::serde::Serialize::serialize({f}))")
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => ::serde::Value::Map(vec![({vn:?}.to_string(), ::serde::Value::Map(vec![{}]))]),\n",
                            items.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n                    fn serialize(&self) -> ::serde::Value {{ match self {{ {arms} }} }}\n                }}"
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!("match v {{ ::serde::Value::Null => Ok({name}), other => Err(::serde::Error::expected({name:?}, other)) }}"),
                Fields::Tuple(1) => {
                    format!("Ok({name}(::serde::Deserialize::deserialize(v)?))")
                }
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::deserialize(&s[{i}])?"))
                        .collect();
                    format!(
                        "{{ let s = ::serde::as_seq(v, {n}, {name:?})?; Ok({name}({})) }}",
                        items.join(", ")
                    )
                }
                Fields::Named(fs) => {
                    let items: Vec<String> = fs
                        .iter()
                        .map(|f| {
                            format!("{f}: ::serde::Deserialize::deserialize(::serde::field(m, {f:?})?)?")
                        })
                        .collect();
                    format!(
                        "{{ let m = ::serde::as_map(v, {name:?})?; Ok({name} {{ {} }}) }}",
                        items.join(", ")
                    )
                }
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n                    fn deserialize(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n                }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut payload_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        unit_arms.push_str(&format!("{vn:?} => Ok({name}::{vn}),\n"));
                    }
                    Fields::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::deserialize(&s[{i}])?"))
                            .collect();
                        payload_arms.push_str(&format!(
                            "{vn:?} => {{ let s = ::serde::as_seq(payload, {n}, {vn:?})?; Ok({name}::{vn}({})) }}\n",
                            items.join(", ")
                        ));
                    }
                    Fields::Named(fs) => {
                        let items: Vec<String> = fs
                            .iter()
                            .map(|f| {
                                format!("{f}: ::serde::Deserialize::deserialize(::serde::field(m, {f:?})?)?")
                            })
                            .collect();
                        payload_arms.push_str(&format!(
                            "{vn:?} => {{ let m = ::serde::as_map(payload, {vn:?})?; Ok({name}::{vn} {{ {} }}) }}\n",
                            items.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{
                    fn deserialize(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{
                        match v {{
                            ::serde::Value::Str(s) => match s.as_str() {{
                                {unit_arms}
                                other => Err(::serde::Error(format!(\"unknown variant {{other:?}} of {name}\"))),
                            }},
                            ::serde::Value::Map(m) if m.len() == 1 => {{
                                let (tag, payload) = (&m[0].0, &m[0].1);
                                match tag.as_str() {{
                                    {payload_arms}
                                    other => Err(::serde::Error(format!(\"unknown variant {{other:?}} of {name}\"))),
                                }}
                            }}
                            other => Err(::serde::Error::expected({name:?}, other)),
                        }}
                    }}
                }}"
            )
        }
    }
}
