//! Offline stand-in for `crossbeam`: the `scope` API this workspace uses,
//! implemented over `std::thread::scope`.

use std::any::Any;
use std::marker::PhantomData;
use std::thread;

/// A scope handle passed to the closure of [`scope`].
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

/// A handle to a spawned scoped thread.
pub struct ScopedJoinHandle<'scope, T> {
    inner: thread::ScopedJoinHandle<'scope, T>,
    _marker: PhantomData<&'scope ()>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Waits for the thread to finish, returning its result or panic
    /// payload.
    pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives the scope handle
    /// (crossbeam's signature); it may freely ignore it.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner_scope = self.inner;
        ScopedJoinHandle {
            inner: inner_scope.spawn(move || f(&Scope { inner: inner_scope })),
            _marker: PhantomData,
        }
    }
}

/// Runs `f` with a scope in which borrowed-data threads can be spawned;
/// all spawned threads are joined before `scope` returns. The `Result`
/// mirrors crossbeam's signature (`Err` on propagated panics — which
/// `std::thread::scope` turns into a resumed panic instead, so this shim
/// always returns `Ok`).
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(thread::scope(|s| f(&Scope { inner: s })))
}
