//! Offline stand-in for `criterion`: the API surface this workspace's
//! benches use (`benchmark_group`, `bench_function`, `bench_with_input`,
//! `iter`, `iter_batched`, `Throughput`, `BenchmarkId`), backed by a small
//! wall-clock harness that warms up briefly, runs a capped number of
//! samples and prints mean / min per-iteration times.
//!
//! Statistical machinery (outlier analysis, HTML reports) is out of scope;
//! the shim is for relative comparisons on one machine.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export mirroring criterion's: prefer `std::hint::black_box`.
pub use std::hint::black_box;

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter rendering.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id carrying only the parameter (the group provides the name).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Throughput annotation for a benchmark.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Number of logical elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortises setup cost.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Fresh setup for every iteration.
    PerIteration,
    /// Small batches (the shim treats all variants as per-iteration).
    SmallInput,
    /// Large batches.
    LargeInput,
}

/// The harness entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Accepts (and ignores) command line configuration, mirroring
    /// criterion's builder.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _parent: self,
        }
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares the per-iteration throughput of subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), |b| f(b));
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.to_string(), |b| f(b, input));
        self
    }

    /// Finishes the group (all reporting already happened inline).
    pub fn finish(&mut self) {}

    fn run(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut b);
        let label = format!("{}/{}", self.name, id);
        if b.samples.is_empty() {
            println!("{label:<56} (no samples)");
            return;
        }
        let total: Duration = b.samples.iter().sum();
        let mean = total / b.samples.len() as u32;
        let min = *b.samples.iter().min().unwrap();
        let mut line = format!(
            "{label:<56} mean {:>12} min {:>12} ({} samples)",
            fmt_duration(mean),
            fmt_duration(min),
            b.samples.len()
        );
        if let Some(Throughput::Elements(n)) = self.throughput {
            if n > 0 && mean.as_nanos() > 0 {
                let per_sec = n as f64 / mean.as_secs_f64();
                line.push_str(&format!("  {per_sec:>12.0} elem/s"));
            }
        }
        println!("{line}");
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Passed to the benchmark closure; runs and times the measured routine.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, one sample per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up.
        black_box(routine());
        for _ in 0..self.sample_size {
            let t = Instant::now();
            black_box(routine());
            self.samples.push(t.elapsed());
        }
    }

    /// Times `routine` over inputs produced by `setup`; setup time is not
    /// measured.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.samples.push(t.elapsed());
        }
    }

    /// Like [`Bencher::iter_batched`] but passes the input by reference.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        black_box(routine(&mut setup()));
        for _ in 0..self.sample_size {
            let mut input = setup();
            let t = Instant::now();
            black_box(routine(&mut input));
            self.samples.push(t.elapsed());
        }
    }
}

/// Declares the benchmark functions of one target.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the main function running benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes flags like `--bench`; the shim ignores them.
            $( $group(); )+
        }
    };
}
