//! Offline stand-in for `parking_lot`: the non-poisoning `RwLock`/`Mutex`
//! API this workspace uses, implemented over `std::sync`. Poisoned locks
//! are transparently recovered (parking_lot has no poisoning either).

// This shim *provides* the raw lock types the rest of the workspace is
// forbidden from naming (clippy.toml `disallowed-types`).
#![allow(clippy::disallowed_types)]

use std::sync;

/// A reader-writer lock with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Acquires a shared read guard.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A mutex with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Acquires the lock.
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}
