//! Offline stand-in for `serde_json`: renders the `serde` shim's value
//! model as standard JSON text and parses it back.
//!
//! Maps with non-string keys ([`serde::Value::Pairs`]) are rendered as
//! arrays of `[key, value]` pairs; the deserialization side of the shim
//! accepts that encoding transparently, so round trips are lossless.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// JSON (de)serialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.0)
    }
}

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.serialize(), &mut out, None, 0);
    Ok(out)
}

/// Serializes a value to human-readable, indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.serialize(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses a JSON document into a deserializable value.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at offset {}", p.pos)));
    }
    Ok(T::deserialize(&v)?)
}

// ----------------------------------------------------------------------
// Rendering
// ----------------------------------------------------------------------

fn render(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                // `{:?}` prints the shortest representation that parses
                // back to the same f64 and always carries a '.' or 'e'.
                out.push_str(&format!("{x:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => render_string(s, out),
        Value::Seq(items) => {
            render_items(
                items.iter(),
                items.len(),
                out,
                indent,
                depth,
                |item, out, d| render(item, out, indent, d),
            );
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(out, indent, depth + 1);
                render_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(v, out, indent, depth + 1);
            }
            newline(out, indent, depth);
            out.push('}');
        }
        Value::Pairs(pairs) => {
            render_items(
                pairs.iter(),
                pairs.len(),
                out,
                indent,
                depth,
                |(k, v), out, d| {
                    out.push('[');
                    render(k, out, indent, d);
                    out.push(',');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    render(v, out, indent, d);
                    out.push(']');
                },
            );
        }
    }
}

fn render_items<T>(
    items: impl Iterator<Item = T>,
    len: usize,
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    mut each: impl FnMut(T, &mut String, usize),
) {
    if len == 0 {
        out.push_str("[]");
        return;
    }
    out.push('[');
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        newline(out, indent, depth + 1);
        each(item, out, depth + 1);
    }
    newline(out, indent, depth);
    out.push(']');
}

fn newline(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..(w * depth) {
            out.push(' ');
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ----------------------------------------------------------------------
// Parsing
// ----------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected {:?} at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.literal("null") => Ok(Value::Null),
            Some(b't') if self.literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error(format!("bad array at offset {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let k = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let v = self.value()?;
                    entries.push((k, v));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error(format!("bad object at offset {}", self.pos))),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error(format!(
                "unexpected {other:?} at offset {}",
                self.pos
            ))),
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' | b'-' | b'+' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid utf8 in number".into()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| Error(format!("bad number {text:?}: {e}")))
        } else if let Ok(i) = text.parse::<i64>() {
            Ok(Value::Int(i))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|e| Error(format!("bad number {text:?}: {e}")))
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(Error("unterminated string".into()));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error("unterminated escape".into()));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(Error("truncated \\u escape".into()));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| Error("bad \\u escape".into()))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error("bad \\u escape".into()))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| Error("bad \\u codepoint".into()))?,
                            );
                        }
                        other => return Err(Error(format!("unknown escape \\{}", other as char))),
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at c.
                    let start = self.pos - 1;
                    let width = utf8_width(c);
                    self.pos = start + width;
                    if self.pos > self.bytes.len() {
                        return Err(Error("truncated utf8".into()));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error("invalid utf8 in string".into()))?;
                    out.push_str(s);
                }
            }
        }
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}
